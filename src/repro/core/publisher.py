"""VMI publishing — Algorithm 1 of the paper.

Decomposes an uploaded VMI into non-redundant software packages, user
data and a base image; stores only what the repository lacks; merges
the upload's primary subgraph into the right master graph; and executes
any base-image replacement Algorithm 2 decides on.

Time accounting matches the paper's definition of publish time: "time
to create a guestfs handle for VMI access, export semantically
non-redundant software packages, remove the unused software packages,
and select the compatible base image" — each charged under its own
label so the experiment modules can break publishing down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import AnalysisResult, SemanticAnalyzer
from repro.core.base_selection import (
    BaseSelection,
    SelectionMemo,
    select_base_image,
)
from repro.errors import PublishError
from repro.image.guestfs import GuestfsHandle
from repro.model.vmi import VirtualMachineImage
from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository, VMIRecord, base_image_qcow2
from repro.sim.clock import SimulatedClock, TimeBreakdown
from repro.sim.costmodel import CostModel

__all__ = ["PublishReport", "VMIPublisher"]


@dataclass(frozen=True)
class PublishReport:
    """What one publish did, and what it cost."""

    vmi_name: str
    #: SimG against the master graph before this upload merged in
    similarity: float
    #: packages actually exported + stored (the non-redundant set)
    exported_packages: tuple[str, ...]
    #: packages of GI[PS] skipped because the repository had them
    deduplicated_packages: tuple[str, ...]
    #: True when the decomposed base image had to be stored
    stored_new_base: bool
    #: stored bases deleted because the selected base replaced them
    replaced_bases: int
    #: repository bytes before -> after
    repo_bytes_before: int
    repo_bytes_after: int
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)

    @property
    def publish_time(self) -> float:
        """Total simulated publish duration (Table II column 6)."""
        return self.breakdown.total

    @property
    def bytes_added(self) -> int:
        return self.repo_bytes_after - self.repo_bytes_before


class VMIPublisher:
    """Executes Algorithm 1 against a repository."""

    def __init__(
        self,
        repo: Repository,
        clock: SimulatedClock,
        cost: CostModel,
        analyzer: SemanticAnalyzer | None = None,
        *,
        dedup_packages: bool = True,
        indexed_selection: bool = True,
    ) -> None:
        """``dedup_packages=False`` yields the paper's *semantic
        decomposition* variant (Figure 4b): every required package is
        exported even when the repository already has it — storage ends
        up identical (the blob store is content-addressed) but the
        publish pays the full export cost.

        ``indexed_selection=False`` makes Algorithm 2 generate base
        candidates with the paper-literal full repository scan instead
        of the attribute-quadruple index; selections are identical
        either way (the index is a pure accelerator)."""
        self.repo = repo
        self.clock = clock
        self.cost = cost
        self.analyzer = analyzer or SemanticAnalyzer(clock, cost)
        self.dedup_packages = dedup_packages
        self.indexed_selection = indexed_selection
        #: content-keyed Algorithm 2 caches, shared across this
        #: publisher's publishes (one memo per repository)
        self.selection_memo = SelectionMemo()

    # ------------------------------------------------------------------

    def publish(self, vmi: VirtualMachineImage) -> PublishReport:
        """Run Algorithm 1 on one uploaded VMI.

        Raises:
            PublishError: when the VMI name was already published (names
                identify uploads in the repository index).
        """
        if self.repo.has_vmi(vmi.name):
            raise PublishError(f"VMI {vmi.name!r} already published")

        bytes_before = self.repo.total_bytes()
        with self.clock.measure() as breakdown:
            report = self._publish_inner(vmi)
        return PublishReport(
            vmi_name=vmi.name,
            similarity=report["similarity"],
            exported_packages=tuple(report["exported"]),
            deduplicated_packages=tuple(report["dedup"]),
            stored_new_base=report["stored_new_base"],
            replaced_bases=report["replaced"],
            repo_bytes_before=bytes_before,
            repo_bytes_after=self.repo.total_bytes(),
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------

    def _publish_inner(self, vmi: VirtualMachineImage) -> dict:
        # upload footprint, recorded before decomposition strips the VMI
        upload_mounted_size = vmi.mounted_size
        upload_n_files = vmi.n_files

        # -- guestfs access (Section VI-C: handle creation is charged) --
        handle = GuestfsHandle(self.clock, self.cost, label="handle")
        handle.launch()
        handle.mount(vmi)

        # -- step 2: semantic analysis ----------------------------------
        analysis: AnalysisResult = self.analyzer.analyze(vmi, self.repo)
        gi_ps = analysis.primary_subgraph

        # -- lines 1-5: store non-redundant packages of GI[PS] -----------
        base_names = vmi.base.package_names()
        exported: list[str] = []
        dedup: list[str] = []
        for pkg in gi_ps.packages():
            if pkg.name in base_names:
                # provided by the stored base image itself; never shipped
                continue
            if self.repo.has_package(pkg):
                if self.dedup_packages:
                    dedup.append(pkg.name)
                    continue
                # semantic-decomposition variant: export anyway (the
                # content-addressed store still keeps one copy)
                self.clock.advance(
                    self.cost.export_package(pkg), "export"
                )
                dedup.append(pkg.name)
                continue
            self.clock.advance(self.cost.export_package(pkg), "export")
            self.repo.store_package(pkg)
            exported.append(pkg.name)

        # -- line 6: store the user data ---------------------------------
        data = vmi.user_data
        if data is not None:
            if self.repo.store_user_data(data):
                self.clock.advance(
                    self.cost.write_bytes(data.size), "export"
                )

        # -- lines 7-11: strip the VMI down to its base --------------------
        for name in list(vmi.primary_names()):
            pkg = vmi.remove_package(name)
            self.clock.advance(self.cost.remove_package(pkg), "remove")
        for name in vmi.remove_unused_dependencies():
            # packages were already dropped; charge the purge work
            pkg = gi_ps.find_package(name)
            if pkg is not None:
                self.clock.advance(
                    self.cost.remove_package(pkg), "remove"
                )
        vmi.detach_user_data()
        residue_bytes = vmi.clear_residue()
        if residue_bytes:
            # Section V-3: "cleaning up the cached repository files"
            self.clock.advance(
                self.cost.cleanup_residue(residue_bytes), "remove"
            )

        # -- lines 12-13: the remaining base image --------------------------
        base_image = vmi.to_base_image()
        gi_bi = analysis.base_subgraph

        # -- line 14: Algorithm 2 --------------------------------------------
        selection: BaseSelection = select_base_image(
            base_image,
            gi_bi,
            gi_ps,
            self.repo,
            memo=self.selection_memo,
            use_index=self.indexed_selection,
        )
        self.clock.advance(self.cost.metadata_update(), "select-base")

        selected_base_names = selection.base.package_names()

        # -- lines 15-20: store base / fetch master ----------------------------
        stored_new_base = False
        if selection.is_new:
            # a genuinely new base: store its qcow2 and open a master
            master = MasterGraph.for_base(selection.base)
            qcow = base_image_qcow2(selection.base)
            self.repo.store_base_image(selection.base)
            self.clock.advance(
                self.cost.write_bytes(qcow.size), "store-base"
            )
            stored_new_base = True
        elif self.repo.has_master_graph(selection.base.blob_key()):
            master = self.repo.get_master_graph(selection.base.blob_key())
        else:
            # base blob exists but carries no master yet (first member)
            master = MasterGraph.for_base(selection.base)

        # -- line 21: merge the upload's primary subgraph ------------------------
        master.add_primary_subgraph(gi_ps, vmi.name)

        # -- lines 22-28: execute base replacement ---------------------------------
        replaced = 0
        migrated: list = []
        for obsolete in selection.replace:
            key = obsolete.blob_key()
            if self.repo.has_master_graph(key):
                master.merge_from(self.repo.get_master_graph(key))
            migrated.extend(self.repo.vmi_records_for_base(key))
            self.repo.repoint_vmis(key, selection.base.blob_key())
            self.repo.remove_base_image(key)
            self.selection_memo.forget_base(key)
            self.clock.advance(self.cost.metadata_update(), "select-base")
            replaced += 1
        if replaced:
            # the merged master may have absorbed members whose deletion
            # is still awaiting GC; the next pass must re-derive this
            # base to prune them
            self.repo.mark_base_dirty(selection.base.blob_key())

        # -- provision top-up: the selected base may provide fewer
        # packages than the upload's own base, or than a base it just
        # replaced.  Any member-closure package the selected base does
        # not provide must be stored, or the affected VMIs could never
        # be reassembled (fsck: "unretrievable-package").  Without a
        # replacement only the upload's own closure can need topping
        # up — existing members already satisfied this (immutable) base
        # — so the full-master scan is reserved for replacements.
        topup_packages = (
            master.package_graph.packages()
            if replaced
            else gi_ps.packages()
        )
        for pkg in topup_packages:
            if pkg.name in selected_base_names:
                continue
            if not self.repo.has_package(pkg):
                self.clock.advance(
                    self.cost.export_package(pkg), "export"
                )
                self.repo.store_package(pkg)
                exported.append(pkg.name)

        # migrated records' contributions were derived against the base
        # they were published on; re-derive them against the selected
        # base now, so the refcounts and join rows stay exact between
        # GC passes (reclaimable_bytes stays an exact estimate)
        for record in migrated:
            contribution: set[int] = set()
            for pname in record.primary_names:
                if not master.has_package(pname):
                    continue
                subgraph = master.extract_primary_subgraph(
                    pname, record.primary_version(pname)
                )
                contribution |= {
                    p.blob_key()
                    for p in subgraph.packages()
                    if p.name not in selected_base_names
                    and self.repo.has_package(p)
                }
            self.repo.reassign_vmi_packages(
                record.name, sorted(contribution)
            )

        # -- line 29: persist the master graph + the VMI record ---------------------
        self.repo.put_master_graph(master)
        self.clock.advance(self.cost.metadata_update(), "metadata")
        primaries = gi_ps.primary_packages()
        # the record's contribution: exactly the stored blobs Algorithm 3
        # imports for it — the primary closure minus what the *selected*
        # base provides.  The repository's liveness refcounts count these.
        self.repo.record_vmi(
            VMIRecord(
                name=vmi.name,
                base_key=selection.base.blob_key(),
                primary_names=tuple(p.name for p in primaries),
                data_label=data.label if data is not None else None,
                mounted_size=upload_mounted_size,
                n_files=upload_n_files,
                primary_identities=tuple(p.identity for p in primaries),
            ),
            package_keys=[
                p.blob_key()
                for p in gi_ps.packages()
                if p.name not in selected_base_names
                and self.repo.has_package(p)
            ],
        )
        handle.shutdown()

        return {
            "similarity": analysis.similarity,
            "exported": exported,
            "dedup": dedup,
            "stored_new_base": stored_new_base,
            "replaced": replaced,
        }
