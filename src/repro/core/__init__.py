"""Semantic-centric VMI management (Section IV) — the paper's core.

* :class:`~repro.core.analyzer.SemanticAnalyzer` — builds semantic
  graphs for uploads and computes similarity against master graphs;
* :func:`~repro.core.base_selection.select_base_image` — Algorithm 2;
* :class:`~repro.core.publisher.VMIPublisher` — Algorithm 1;
* :class:`~repro.core.assembler.VMIAssembler` — Algorithm 3;
* :class:`~repro.core.system.Expelliarmus` — the end-to-end facade of
  Figure 2 (upload -> analyze -> decompose -> store; request ->
  assemble -> deliver).
"""

from repro.core.analyzer import AnalysisResult, SemanticAnalyzer
from repro.core.assembler import RetrievalReport, VMIAssembler
from repro.core.base_selection import BaseSelection, select_base_image
from repro.core.master_graph import MasterGraph, base_subgraph_of
from repro.core.publisher import PublishReport, VMIPublisher
from repro.core.system import Expelliarmus

__all__ = [
    "AnalysisResult",
    "SemanticAnalyzer",
    "RetrievalReport",
    "VMIAssembler",
    "BaseSelection",
    "select_base_image",
    "MasterGraph",
    "base_subgraph_of",
    "PublishReport",
    "VMIPublisher",
    "Expelliarmus",
]
