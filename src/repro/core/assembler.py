"""VMI retrieval — Algorithm 3 of the paper.

Assembles a requested VMI from stored parts: copy the base image from
the repository, create a guestfs handle, reset the image
(virt-sysprep), import user data, then install every primary-subgraph
package the base does not already provide from the local package
repository.

The four charged components — base-image copy, handle creation, reset,
import — are exactly the stack Figure 5a plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IncompatibleImageError, RetrievalError
from repro.image.guestfs import GuestfsHandle
from repro.image.sysprep import sysprep
from repro.model.graph import PackageRole, SemanticGraph
from repro.model.vmi import VirtualMachineImage
from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository
from repro.sim.clock import SimulatedClock, TimeBreakdown
from repro.sim.costmodel import CostModel
from repro.similarity.compatibility import is_compatible

__all__ = ["RETRIEVAL_COMPONENTS", "RetrievalReport", "VMIAssembler"]

#: the four charged retrieval components, in Figure-5a stack order
RETRIEVAL_COMPONENTS = ("base-copy", "handle", "reset", "import")


@dataclass(frozen=True)
class RetrievalReport:
    """The assembled VMI plus the Figure-5a time breakdown."""

    vmi: VirtualMachineImage
    #: packages imported from the repository (name order = install order)
    imported_packages: tuple[str, ...]
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)

    @property
    def retrieval_time(self) -> float:
        """Total simulated retrieval duration (Table II column 7)."""
        return self.breakdown.total

    def component(self, label: str) -> float:
        return self.breakdown.component(label)


class VMIAssembler:
    """Executes Algorithm 3 against a repository."""

    def __init__(
        self, repo: Repository, clock: SimulatedClock, cost: CostModel
    ) -> None:
        self.repo = repo
        self.clock = clock
        self.cost = cost

    # ------------------------------------------------------------------

    def retrieve(self, name: str) -> RetrievalReport:
        """Reassemble a published VMI by name.

        Raises:
            NotInRepositoryError: unknown VMI name.
            IncompatibleImageError: repository state violates the
                compatibility precondition of Algorithm 3 line 2.
        """
        record = self.repo.get_vmi_record(name)
        return self.assemble(
            name=name,
            base_key=record.base_key,
            primary_names=record.primary_names,
            data_label=record.data_label,
            primary_versions={
                pname: version
                for pname, version, _ in record.primary_identities
            },
        )

    def assemble(
        self,
        name: str,
        base_key: int,
        primary_names: tuple[str, ...],
        data_label: str | None = None,
        primary_versions: dict[str, str] | None = None,
    ) -> RetrievalReport:
        """Assemble a VMI from explicit parts (custom compositions).

        This is the paper's "assembly with differing functionality":
        any primary set present in the base's master graph can be
        combined, not only sets that were uploaded together.

        Raises:
            NotInRepositoryError: the base, a primary, or the user data
                is not stored.
            IncompatibleImageError: ``comp(GI[BI], GI[PS]) != 1``.
        """
        with self.clock.measure() as breakdown:
            vmi, imported = self._assemble_inner(
                name,
                base_key,
                primary_names,
                data_label,
                primary_versions or {},
            )
        return RetrievalReport(
            vmi=vmi, imported_packages=tuple(imported), breakdown=breakdown
        )

    # ------------------------------------------------------------------

    def _assemble_inner(
        self,
        name: str,
        base_key: int,
        primary_names: tuple[str, ...],
        data_label: str | None,
        primary_versions: dict[str, str],
    ) -> tuple[VirtualMachineImage, list[str]]:
        # -- line 1: fetch subgraphs ------------------------------------
        master: MasterGraph = self.repo.get_master_graph(base_key)
        gi_bi = master.base_subgraph
        gi_ps = SemanticGraph()
        for pname in primary_names:
            if not master.has_package(pname):
                raise RetrievalError(
                    f"package {pname!r} is not available for base "
                    f"{master.attrs}"
                )
            gi_ps.union_update(
                master.extract_primary_subgraph(
                    pname, primary_versions.get(pname)
                )
            )

        # -- line 2: compatibility precondition ---------------------------
        if primary_names and not is_compatible(gi_bi, gi_ps):
            raise IncompatibleImageError(
                f"requested packages {primary_names} are not compatible "
                f"with base {master.attrs}"
            )

        # -- line 3: copy the base image out of the repository -------------
        base = self.repo.get_base_image(base_key)
        self.clock.advance(
            self.cost.read_bytes(self.repo.base_image_size(base_key)),
            "base-copy",
        )

        # guestfs handle over the fresh copy
        handle = GuestfsHandle(self.clock, self.cost, label="handle")
        handle.launch()

        # -- line 4: reset to first-boot state ------------------------------
        vmi = VirtualMachineImage(name, base)
        handle.mount(vmi)
        sysprep(vmi)
        self.clock.advance(self.cost.vmi_reset(), "reset")

        # -- line 5: import user data ----------------------------------------
        if data_label is not None:
            data = self.repo.get_user_data(data_label)
            vmi.attach_user_data(data)
            self.clock.advance(self.cost.read_bytes(data.size), "import")

        # -- lines 6-13: install missing packages ------------------------------
        base_names = base.package_names()
        imported: list[str] = []
        primary_set = set(primary_names)
        for pkg in gi_ps.packages():
            if pkg.name in base_names:
                continue  # line 7: already provided by the base image
            stored = self.repo.get_package(pkg.blob_key())
            role = (
                PackageRole.PRIMARY
                if pkg.name in primary_set
                else PackageRole.DEPENDENCY
            )
            vmi.install_package(
                stored, role, auto=role is PackageRole.DEPENDENCY
            )
            self.clock.advance(self.cost.import_package(stored), "import")
            imported.append(pkg.name)

        handle.shutdown()
        return vmi, imported
