"""Assembly planning — cacheable retrieval plans (DESIGN.md §9).

Algorithm 3 (:mod:`repro.core.assembler`) repeats the same derivation
work for every member of a VMI family: fetch the master graph, extract
each requested primary's subgraph, union them, check the compatibility
precondition, and decide which packages the base already provides.  For
a repository serving read-heavy traffic most requests hit a small set
of ``(base image, primary set)`` combinations, so that derivation is
pure amortisable overhead.

:class:`AssemblyPlanner` splits retrieval into two halves:

* **derive** — resolve a :class:`RetrievalRequest` into an explicit
  :class:`AssemblyPlan`: the base blob to copy (and its charged size),
  and the exact ordered list of :class:`InstallStep` package imports.
  Plans are cached keyed by the request's ``(base_key, primary
  identity sequence)``.
* **execute** — run a plan against the repository, charging the same
  four Figure-5a components the sequential assembler charges.

**Cache soundness.**  A cached plan is only served while the
repository state it was derived from still holds: the base blob must
still be stored (content-addressed, so same key ⟹ same bytes) and the
base's master graph must still carry the revision the plan recorded —
:attr:`~repro.repository.master_graphs.MasterGraph.revision` is drawn
from a process-wide monotonic counter, so any membership change
(publish merge, base replacement, GC rebuild) moves it and the stale
plan is re-derived.  A repository-wide mutation counter
(:attr:`~repro.repository.repo.Repository.mutations`) provides a fast
path: while nothing in the repository changed at all, revalidation is
one integer compare.

The planner is an accelerator, never an oracle: executing a plan must
be observationally identical to :meth:`~repro.core.assembler.
VMIAssembler.retrieve` — same assembled VMI, same imported-package
order, same errors — with only the *charged cost* allowed to differ
(a warm base copy is a local clone, not a repository read).  The
differential and property tests in ``tests/property/
test_retrieval_props.py`` pin that equivalence down.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass

from repro.core.assembler import RetrievalReport
from repro.errors import IncompatibleImageError, RetrievalError
from repro.image.guestfs import GuestfsHandle
from repro.image.sysprep import sysprep
from repro.model.graph import PackageRole, SemanticGraph
from repro.model.vmi import VirtualMachineImage
from repro.repository.repo import Repository, VMIRecord
from repro.sim.clock import SimulatedClock
from repro.sim.costmodel import CostModel
from repro.similarity.compatibility import is_compatible

__all__ = [
    "AssemblyPlan",
    "AssemblyPlanner",
    "InstallStep",
    "PlannedRetrieval",
    "PlannerStats",
    "RetrievalRequest",
]


@dataclass(frozen=True)
class RetrievalRequest:
    """One retrieval to resolve: which VMI to assemble, from what."""

    name: str
    base_key: int
    primary_names: tuple[str, ...]
    data_label: str | None = None
    #: exact primary versions, when known (published VMIs record them);
    #: unlisted primaries resolve to the newest version in the master
    primary_versions: tuple[tuple[str, str], ...] = ()

    @classmethod
    def for_record(cls, record: VMIRecord) -> "RetrievalRequest":
        """The request that reassembles one published VMI."""
        return cls(
            name=record.name,
            base_key=record.base_key,
            primary_names=record.primary_names,
            data_label=record.data_label,
            primary_versions=tuple(
                (pname, version)
                for pname, version, _ in record.primary_identities
            ),
        )

    def plan_key(self) -> tuple:
        """The cache key: base blob + ordered primary identity set.

        The primary sequence is part of the key because install order
        follows request order — two orderings of one set are distinct
        plans with distinct (equally valid) import sequences.
        """
        return (self.base_key, self.primary_names, self.primary_versions)

    def version_of(self, name: str) -> str | None:
        for pname, version in self.primary_versions:
            if pname == name:
                return version
        return None


@dataclass(frozen=True)
class InstallStep:
    """One package import of a plan (Algorithm 3 lines 6-13)."""

    blob_key: int
    name: str
    role: PackageRole


@dataclass(frozen=True)
class AssemblyPlan:
    """Everything retrieval must do, resolved once and replayable."""

    base_key: int
    #: stored qcow2 bytes — the charged size of a cold base copy
    base_bytes: int
    installs: tuple[InstallStep, ...]
    #: master-graph revision the install list was derived from; the
    #: plan is stale the moment the master moves past it
    master_revision: int

    def imported_names(self) -> tuple[str, ...]:
        return tuple(step.name for step in self.installs)


@dataclass
class PlannerStats:
    """Work counters for the planner (benchmark + test probes)."""

    #: retrieval requests resolved through the planner
    requests: int = 0
    #: plans derived from scratch (cache miss or invalidation)
    plans_derived: int = 0
    #: requests answered by a still-valid cached plan
    plan_hits: int = 0
    #: cached plans discarded because the repository moved on
    plan_invalidations: int = 0
    #: primary subgraph extractions performed while deriving
    subgraph_extractions: int = 0
    #: compatibility checks performed while deriving
    compat_checks: int = 0
    #: base copies charged at full repository-read cost
    base_copies: int = 0
    #: base copies served from the warm local cache (clone cost)
    base_cache_hits: int = 0

    def snapshot(self) -> "PlannerStats":
        return dataclasses.replace(self)

    def since(self, before: "PlannerStats") -> "PlannerStats":
        """The counter delta between ``before`` and now."""
        return PlannerStats(**{
            f.name: getattr(self, f.name) - getattr(before, f.name)
            for f in dataclasses.fields(self)
        })


@dataclass
class _CacheEntry:
    plan: AssemblyPlan
    #: repository mutation counter at last successful validation —
    #: while it matches, the plan is fresh by construction
    validated_at: int


@dataclass(frozen=True)
class PlannedRetrieval:
    """One planner-driven retrieval plus its cache outcome."""

    report: RetrievalReport
    plan_hit: bool
    warm_base: bool


class AssemblyPlanner:
    """Derives, caches and executes assembly plans for one repository."""

    def __init__(
        self, repo: Repository, clock: SimulatedClock, cost: CostModel
    ) -> None:
        self.repo = repo
        self.clock = clock
        self.cost = cost
        self.stats = PlannerStats()
        #: one planner may serve many retrieval threads (DESIGN.md
        #: §12): the plan dict, warm-base set and work counters mutate
        #: only under this mutex, so a reader can never observe a torn
        #: cache entry or serve a half-derived plan.  Reentrant, so
        #: derivation helpers may take it again.
        self._mutex = threading.RLock()
        self._plans: dict[tuple, _CacheEntry] = {}
        #: base blobs with a warm local copy; entries are only trusted
        #: while the blob is still stored
        self._warm_bases: set[int] = set()

    # ------------------------------------------------------------------
    # plan cache
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._mutex:
            return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan and warm base copy."""
        with self._mutex:
            self._plans.clear()
            self._warm_bases.clear()

    def plan_for(self, request: RetrievalRequest) -> tuple[AssemblyPlan, bool]:
        """The plan for ``request``: ``(plan, served_from_cache)``.

        Raises:
            NotInRepositoryError: the base (or its master graph) is not
                stored.
            RetrievalError: a requested primary is not available for
                the base.
            IncompatibleImageError: the requested primary set violates
                the Algorithm 3 line-2 precondition.
        """
        key = request.plan_key()
        with self._mutex:
            entry = self._plans.get(key)
            if entry is not None:
                if entry.validated_at == self.repo.mutations:
                    # nothing in the repository changed since validation
                    self.stats.plan_hits += 1
                    return entry.plan, True
                if self._still_valid(entry.plan):
                    entry.validated_at = self.repo.mutations
                    self.stats.plan_hits += 1
                    return entry.plan, True
                self.stats.plan_invalidations += 1
                del self._plans[key]
            plan = self._derive(request)
            self._plans[key] = _CacheEntry(
                plan=plan, validated_at=self.repo.mutations
            )
            return plan, False

    def _still_valid(self, plan: AssemblyPlan) -> bool:
        """Is the repository state the plan was derived from intact?"""
        if not self.repo.blobs.contains(plan.base_key):
            return False
        return (
            self.repo.master_revision(plan.base_key)
            == plan.master_revision
        )

    def _derive(self, request: RetrievalRequest) -> AssemblyPlan:
        """Resolve a request from the master graph (Alg. 3 lines 1-2, 6-7)."""
        self.stats.plans_derived += 1
        master = self.repo.get_master_graph(request.base_key)
        gi_ps = SemanticGraph()
        for pname in request.primary_names:
            if not master.has_package(pname):
                raise RetrievalError(
                    f"package {pname!r} is not available for base "
                    f"{master.attrs}"
                )
            gi_ps.union_update(
                master.extract_primary_subgraph(
                    pname, request.version_of(pname)
                )
            )
            self.stats.subgraph_extractions += 1
        if request.primary_names:
            self.stats.compat_checks += 1
            if not is_compatible(master.base_subgraph, gi_ps):
                raise IncompatibleImageError(
                    f"requested packages {request.primary_names} are not "
                    f"compatible with base {master.attrs}"
                )
        base = self.repo.get_base_image(request.base_key)
        base_names = base.package_names()
        primary_set = set(request.primary_names)
        installs = tuple(
            InstallStep(
                blob_key=pkg.blob_key(),
                name=pkg.name,
                role=(
                    PackageRole.PRIMARY
                    if pkg.name in primary_set
                    else PackageRole.DEPENDENCY
                ),
            )
            for pkg in gi_ps.packages()
            if pkg.name not in base_names
        )
        return AssemblyPlan(
            base_key=request.base_key,
            base_bytes=self.repo.base_image_size(request.base_key),
            installs=installs,
            master_revision=master.revision,
        )

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------

    def assemble(self, request: RetrievalRequest) -> PlannedRetrieval:
        """Resolve and execute a retrieval through the plan caches.

        Raises the same errors as :meth:`~repro.core.assembler.
        VMIAssembler.assemble` under the same conditions.
        """
        with self._mutex:
            self.stats.requests += 1
        plan, plan_hit = self.plan_for(request)
        with self.clock.measure() as breakdown:
            vmi, warm = self._execute(request, plan)
        return PlannedRetrieval(
            report=RetrievalReport(
                vmi=vmi,
                imported_packages=plan.imported_names(),
                breakdown=breakdown,
            ),
            plan_hit=plan_hit,
            warm_base=warm,
        )

    def _execute(
        self, request: RetrievalRequest, plan: AssemblyPlan
    ) -> tuple[VirtualMachineImage, bool]:
        """Algorithm 3 lines 3-13, replayed from the plan."""
        base = self.repo.get_base_image(plan.base_key)
        warm = self._charge_base_copy(plan)

        handle = GuestfsHandle(self.clock, self.cost, label="handle")
        handle.launch()

        vmi = VirtualMachineImage(request.name, base)
        handle.mount(vmi)
        sysprep(vmi)
        self.clock.advance(self.cost.vmi_reset(), "reset")

        if request.data_label is not None:
            data = self.repo.get_user_data(request.data_label)
            vmi.attach_user_data(data)
            self.clock.advance(self.cost.read_bytes(data.size), "import")

        for step in plan.installs:
            stored = self.repo.get_package(step.blob_key)
            vmi.install_package(
                stored,
                step.role,
                auto=step.role is PackageRole.DEPENDENCY,
            )
            self.clock.advance(self.cost.import_package(stored), "import")

        handle.shutdown()
        return vmi, warm

    def _charge_base_copy(self, plan: AssemblyPlan) -> bool:
        """Charge the base-copy component; True when served warm.

        The first copy of a base reads the full qcow2 from the
        repository; while the blob stays stored, later copies clone the
        warm local image instead.  A vanished blob (GC, replacement)
        silently demotes back to a cold read of the re-stored content.
        """
        key = plan.base_key
        with self._mutex:
            if key in self._warm_bases:
                if self.repo.blobs.contains(key):
                    self.stats.base_cache_hits += 1
                    self.clock.advance(
                        self.cost.base_cache_clone(plan.base_bytes),
                        "base-copy",
                    )
                    return True
                self._warm_bases.discard(key)
            self.stats.base_copies += 1
            self.clock.advance(
                self.cost.read_bytes(plan.base_bytes), "base-copy"
            )
            self._warm_bases.add(key)
            return False
