"""The VMI semantic analyzer (Section IV-B).

Takes an uploaded VMI plus its primary-package list, constructs the
semantic graph and the two induced subgraphs, and computes the semantic
similarity of the upload against the *master graph* with matching base
attributes — one comparison instead of one per stored VMI, which is the
performance point of Section III-H ("the similarity computation incurs
time penalties in the order of less than 100 ms for each VMI").

Similarity semantics: the upload's full semantic graph is compared
against the master graph's full graph (base subgraph union all member
package subgraphs), as Section IV-B describes ("compares the newly
uploaded VMI with the appropriate master graph").  This matches the
Table II readings qualitatively: the second upload (Redis — one small
primary on an already-stored base) scores near 1, while uploads whose
dominant payload is large unmatched packages (MongoDB, Cassandra)
score low.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.graph import SemanticGraph
from repro.model.vmi import VirtualMachineImage
from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository
from repro.sim.clock import SimulatedClock
from repro.sim.costmodel import CostModel
from repro.similarity.graph import graph_similarity_maps

__all__ = ["AnalysisResult", "SemanticAnalyzer"]


@dataclass(frozen=True)
class AnalysisResult:
    """Everything the decomposer needs about one upload."""

    graph: SemanticGraph
    primary_subgraph: SemanticGraph
    base_subgraph: SemanticGraph
    #: SimG against the best-matching master graph (0.0 when none exists)
    similarity: float
    #: the master graph the similarity was computed against, if any
    master: MasterGraph | None


class SemanticAnalyzer:
    """Builds semantic graphs and scores uploads against master graphs."""

    def __init__(self, clock: SimulatedClock, cost: CostModel) -> None:
        self.clock = clock
        self.cost = cost

    def analyze(
        self, vmi: VirtualMachineImage, repo: Repository
    ) -> AnalysisResult:
        """Construct graphs for ``vmi`` and score it against the repo.

        Charged time: one similarity computation per candidate master
        graph with matching base attributes (in the common case exactly
        one, matching the paper's "< 100 ms per VMI").
        """
        graph = vmi.semantic_graph()
        primary_subgraph = graph.extract_primary_subgraph()
        base_subgraph = graph.extract_base_subgraph()

        best_master: MasterGraph | None = None
        best_similarity = 0.0
        upload_map = {p.name: p for p in graph.packages()}
        for master in repo.masters_with_attrs(vmi.base.attrs):
            self.clock.advance(
                self.cost.similarity_computation(), "similarity"
            )
            # SimG reads a graph only through its name→package map and
            # base attrs; the master's incrementally maintained map
            # replaces the per-comparison full_graph() copy+union
            sim = graph_similarity_maps(
                upload_map,
                graph.base_attrs,
                master.full_package_map(),
                master.base.attrs,
            )
            if best_master is None or sim > best_similarity:
                best_master = master
                best_similarity = sim

        return AnalysisResult(
            graph=graph,
            primary_subgraph=primary_subgraph,
            base_subgraph=base_subgraph,
            similarity=best_similarity if best_master is not None else 0.0,
            master=best_master,
        )
