"""Package similarity ``simP`` (Section III-E).

Two packages are compared attribute-wise on the triple
``(pkg, ver, arch)``:

* **name** — different names mean different software: similarity 0;
* **version** — graded by matching leading numeric components, so
  ``9.5.14`` vs ``9.5.2`` scores 2/3 while ``9.x`` vs ``10.x`` scores 0;
* **architecture** — equal architectures match; ``"all"`` is portable
  and matches anything (the paper: "an architecture attribute of 'all'
  means that the package is portable and available on base images with
  any architecture").

``simP`` is the product of the three components, hence 1 exactly when
the packages are interchangeable and 0 when any hard attribute differs.
"""

from __future__ import annotations

from repro.model.attributes import ARCH_ALL, PackageAttrs
from repro.model.package import Package
from repro.model.versions import Version, version_component_similarity

__all__ = ["package_similarity", "version_similarity", "arch_similarity"]


def version_similarity(v1: Version, v2: Version) -> float:
    """Graded version proximity in ``[0, 1]``."""
    return version_component_similarity(v1, v2)


def arch_similarity(a1: str, a2: str) -> float:
    """1.0 when the architectures are interchangeable, else 0.0."""
    if a1 == a2 or a1 == ARCH_ALL or a2 == ARCH_ALL:
        return 1.0
    return 0.0


def package_similarity(p1: Package | PackageAttrs, p2: Package | PackageAttrs) -> float:
    """``simP``: product of name, version and architecture similarity.

    Accepts either :class:`~repro.model.package.Package` payloads or
    bare attribute triples.

    >>> from repro.model.package import make_package
    >>> a = make_package("redis-server", "3.0.6", installed_size=1000)
    >>> package_similarity(a, a)
    1.0
    """
    a1 = p1.attrs if isinstance(p1, Package) else p1
    a2 = p2.attrs if isinstance(p2, Package) else p2
    if a1.pkg != a2.pkg:
        return 0.0
    return (
        version_similarity(a1.version, a2.version)
        * arch_similarity(a1.arch, a2.arch)
    )
