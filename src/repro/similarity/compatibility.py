"""Semantic compatibility ``comp`` (Section III-G).

``comp(GI[BI], GI[PS])`` decides whether a primary-package subgraph can
be installed on a base-image subgraph: over every pair of packages with
the *same name* (homonym ``pkg`` attribute) appearing in both subgraphs,
multiply the package similarities::

    comp = Π_{(P1,P2): pkg(P1)=pkg(P2)} simP(P1, P2)

The product is 1 exactly when every shared package (typically the OS
libraries the primaries depend on — libc6, openssl ...) is present in
the base at a fully compatible version; any mismatch drives the product
below 1 and the pair is declared incompatible ("if the semantic
compatibility has a value of 1, the primary packages can be installed
and used together with the base image; otherwise they are
incompatible").

Disjoint subgraphs (no homonyms) are vacuously compatible: the empty
product is 1 — the base simply provides nothing the primaries constrain.
"""

from __future__ import annotations

from repro.model.graph import SemanticGraph
from repro.similarity.package import package_similarity

__all__ = ["semantic_compatibility", "is_compatible"]


def semantic_compatibility(
    base_subgraph: SemanticGraph, primary_subgraph: SemanticGraph
) -> float:
    """``comp`` in ``[0, 1]``: product of homonym package similarities."""
    base_pkgs = {p.name: p for p in base_subgraph.packages()}
    value = 1.0
    for pkg in primary_subgraph.packages():
        counterpart = base_pkgs.get(pkg.name)
        if counterpart is not None:
            value *= package_similarity(counterpart, pkg)
            if value == 0.0:
                return 0.0
    return value


def is_compatible(
    base_subgraph: SemanticGraph, primary_subgraph: SemanticGraph
) -> bool:
    """The strict ``comp = 1`` predicate the algorithms test."""
    return semantic_compatibility(base_subgraph, primary_subgraph) == 1.0
