"""Size similarity ``simsize`` (Section III-F).

For a matched package pair the weight is the larger of the two package
sizes normalised by the largest package across *both* VMIs::

    simsize(P1, P2) = max(size(P1), size(P2)) / max_{P in V1 ∪ V2} size(P)

This makes SimG a *weighted* Jaccard: agreeing on a 200 MB database
server means more than agreeing on a 40 KB shell utility, which is what
lets the metric separate images that share only the OS plumbing from
images that share their actual payload.
"""

from __future__ import annotations

from typing import Iterable

from repro.model.package import Package

__all__ = ["size_similarity", "max_package_size"]


def max_package_size(packages: Iterable[Package]) -> int:
    """Largest installed size over a package population (0 if empty)."""
    return max((p.installed_size for p in packages), default=0)


def size_similarity(p1: Package, p2: Package, max_size: int) -> float:
    """``simsize`` with a precomputed normaliser.

    Raises:
        ValueError: if ``max_size`` is smaller than either package — the
            normaliser must come from the union population.
    """
    larger = max(p1.installed_size, p2.installed_size)
    if max_size <= 0:
        return 0.0
    if larger > max_size:
        raise ValueError(
            "max_size must be the maximum over the union population"
        )
    return larger / max_size
