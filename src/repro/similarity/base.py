"""Base-image similarity ``simBI`` (Section III-E).

Base images carry the quadruple ``(type, distro, ver, arch)``.  Hard
attributes (OS type, distribution, architecture) either match or they
don't; the release version is graded like package versions so Ubuntu
16.04 vs 16.10 scores higher than 16.04 vs 18.04.

Algorithm 2 and master-graph membership use the *strict* predicate
``simBI = 1`` — identical quadruples — which :func:`same_base_attrs`
exposes directly.
"""

from __future__ import annotations

from repro.model.attributes import BaseImageAttrs
from repro.model.versions import Version, version_component_similarity
from repro.similarity.package import arch_similarity

__all__ = [
    "base_similarity",
    "same_base_attrs",
    "same_release_version",
    "compatible_arch",
]


def base_similarity(b1: BaseImageAttrs, b2: BaseImageAttrs) -> float:
    """``simBI`` in ``[0, 1]``; 1 exactly on identical quadruples."""
    if b1.os_type != b2.os_type or b1.distro != b2.distro:
        return 0.0
    if arch_similarity(b1.arch, b2.arch) == 0.0:
        return 0.0
    if b1.version == b2.version:
        return 1.0
    return version_component_similarity(
        b1.parsed_version(), b2.parsed_version()
    )


def same_base_attrs(b1: BaseImageAttrs, b2: BaseImageAttrs) -> bool:
    """The strict ``simBI(BI, b) = 1`` test of Algorithm 2 line 7.

    Decomposes attribute-wise: exact ``os_type`` and ``distro``
    equality, :func:`compatible_arch` on the architectures and
    :func:`same_release_version` on the releases.  The repository's
    base-attribute index partitions stored bases along exactly these
    factors, so an index lookup and a full-scan filter agree base for
    base.
    """
    return base_similarity(b1, b2) == 1.0


def same_release_version(v1: str, v2: str) -> bool:
    """The release factor of ``simBI = 1``: equal spellings, or graded
    version similarity of exactly 1 (e.g. ``"1.0"`` vs ``"1.0-0"``)."""
    if v1 == v2:
        return True
    return (
        version_component_similarity(Version.parse(v1), Version.parse(v2))
        == 1.0
    )


def compatible_arch(a1: str, a2: str) -> bool:
    """The architecture factor of ``simBI = 1`` (``"all"`` is portable)."""
    return arch_similarity(a1, a2) == 1.0
