"""VMI graph similarity ``SimG`` (Section III-F).

``SimG(G1, G2)`` is a size-weighted Jaccard index scaled by the base
similarity::

                            Σ_(P1,P2) matched  simsize(P1,P2) · simP(P1,P2)
  SimG = simBI(BI1, BI2) · ────────────────────────────────────────────────
                                Σ_(P over union)  weight(P)

where packages *match* when they share the ``pkg`` name attribute, the
matched-pair weight is ``simsize`` (Section III-F) and an unmatched
package contributes its own normalised size to the denominator only.

Interpretation note (also in DESIGN.md): the paper's displayed formula
sums over the full Cartesian product ``V1 × V2`` in both numerator and
denominator, which taken literally double-counts non-matching pairs
quadratically and cannot reach 1 on identical graphs.  Read together
with the stated intent ("Jaccard index, also known as intersection over
union") we implement the evident meaning above, which is symmetric,
bounded to ``[0, 1]``, reaches 1 exactly on semantically identical
graphs, and 0 on package-disjoint ones.

When either graph lacks a base-image vertex (e.g. comparing a primary
package subgraph against a master graph) the ``simBI`` factor falls back
to comparing the graphs' package populations alone, scaled by the base
attrs of whichever graphs carry one (identical attrs -> factor 1).
"""

from __future__ import annotations

from repro.model.attributes import BaseImageAttrs
from repro.model.graph import SemanticGraph
from repro.model.package import Package
from repro.similarity.base import base_similarity
from repro.similarity.package import package_similarity
from repro.similarity.size import max_package_size, size_similarity

__all__ = ["graph_similarity", "graph_similarity_maps"]


def _attrs_factor(
    b1: BaseImageAttrs | None, b2: BaseImageAttrs | None
) -> float:
    if b1 is None or b2 is None:
        # subgraph-vs-master comparisons: base compatibility is the
        # caller's job (master graphs are already keyed by base attrs)
        return 1.0
    return base_similarity(b1, b2)


def graph_similarity(g1: SemanticGraph, g2: SemanticGraph) -> float:
    """``SimG`` in ``[0, 1]``; symmetric; 1 on identical graphs.

    Matching is by package *name*; a name present in both graphs
    contributes ``simsize · simP`` to the numerator and ``simsize`` to
    the denominator, a name present in only one graph contributes its
    normalised size to the denominator.

    Two empty graphs score 0 (no shared semantics to speak of), matching
    Table II where the first uploaded image reports similarity 0.
    """
    return graph_similarity_maps(
        {p.name: p for p in g1.packages()},
        g1.base_attrs,
        {p.name: p for p in g2.packages()},
        g2.base_attrs,
    )


def graph_similarity_maps(
    pkgs1: dict[str, Package],
    attrs1: BaseImageAttrs | None,
    pkgs2: dict[str, Package],
    attrs2: BaseImageAttrs | None,
) -> float:
    """``SimG`` over prebuilt name→package maps.

    ``SimG`` depends on a graph only through its name→package map (last
    version wins on duplicate names, as graph iteration order yields)
    and its base attributes — edges never enter the formula.  Callers
    that maintain the map incrementally (the analyzer scoring uploads
    against master graphs) skip rebuilding a full union graph per
    comparison; :func:`graph_similarity` is the graph-argument wrapper
    and both compute bit-identical values.
    """
    if not pkgs1 and not pkgs2:
        return 0.0

    max_size = max(
        max_package_size(pkgs1.values()), max_package_size(pkgs2.values())
    )
    if max_size == 0:
        # degenerate: all packages are zero-sized; fall back to unweighted
        matched = sum(
            package_similarity(pkgs1[n], pkgs2[n])
            for n in pkgs1.keys() & pkgs2.keys()
        )
        union = len(pkgs1.keys() | pkgs2.keys())
        return _attrs_factor(attrs1, attrs2) * (
            matched / union if union else 0.0
        )

    numerator = 0.0
    denominator = 0.0
    # sorted union: summation order independent of argument order, so
    # the metric is exactly (not just approximately) symmetric
    for name in sorted(pkgs1.keys() | pkgs2.keys()):
        in1, in2 = name in pkgs1, name in pkgs2
        if in1 and in2:
            w = size_similarity(pkgs1[name], pkgs2[name], max_size)
            numerator += w * package_similarity(pkgs1[name], pkgs2[name])
            denominator += w
        else:
            p = pkgs1[name] if in1 else pkgs2[name]
            denominator += p.installed_size / max_size

    if denominator == 0.0:
        return 0.0
    return _attrs_factor(attrs1, attrs2) * (numerator / denominator)
