"""Semantic similarity and compatibility metrics (Section III-E..G).

* :func:`~repro.similarity.package.package_similarity` — ``simP``
* :func:`~repro.similarity.base.base_similarity` — ``simBI``
* :func:`~repro.similarity.size.size_similarity` — ``simsize``
* :func:`~repro.similarity.graph.graph_similarity` — ``SimG``
* :func:`~repro.similarity.compatibility.semantic_compatibility` — ``comp``

All metrics map into ``[0, 1]``, are symmetric in their two package /
graph arguments, and reach 1 exactly on semantic identity.
"""

from repro.similarity.base import base_similarity, same_base_attrs
from repro.similarity.compatibility import (
    is_compatible,
    semantic_compatibility,
)
from repro.similarity.graph import graph_similarity
from repro.similarity.package import (
    arch_similarity,
    package_similarity,
    version_similarity,
)
from repro.similarity.size import size_similarity

__all__ = [
    "base_similarity",
    "same_base_attrs",
    "is_compatible",
    "semantic_compatibility",
    "graph_similarity",
    "arch_similarity",
    "package_similarity",
    "version_similarity",
    "size_similarity",
]
