"""VMI -> container conversion driven by the semantic decomposition.

Because a published VMI is already stored as (base image, per-primary
package subgraphs, user data), containerizing it is a re-labelling of
repository content:

* the base image becomes the **base layer** (digest = the stored base
  blob key, so every container from the same base shares it);
* each primary package's subgraph becomes one **service layer**
  (digest = sorted identities of the subgraph's non-base packages);
* user data becomes a **data layer**.

``containerize`` emits one image carrying all of a VMI's services;
``containerize_services`` emits one single-service container per
primary package — the paper's "multiple container service
functionality".
"""

from __future__ import annotations

from repro.containerize.layers import ContainerImage, Layer
from repro.errors import RetrievalError
from repro.guestos.filesystem import package_manifest
from repro.image.manifest import FileManifest
from repro.model.package import Package
from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository, base_image_qcow2

__all__ = ["Containerizer"]


class Containerizer:
    """Builds container images from published repository content."""

    def __init__(self, repo: Repository) -> None:
        self.repo = repo

    # ------------------------------------------------------------------

    def _base_layer(self, master: MasterGraph) -> Layer:
        base = master.base
        return Layer.from_parts(
            label=f"base:{base.attrs}",
            identity_parts=("base", base.blob_key()),
            manifest=base_image_qcow2(base).manifest,
        )

    def _service_layer(
        self, master: MasterGraph, primary: str
    ) -> Layer:
        """One primary package's subgraph, minus base-provided packages."""
        subgraph = master.extract_primary_subgraph(primary)
        base_names = master.base.package_names()
        packages: list[Package] = sorted(
            (
                p
                for p in subgraph.packages()
                if p.name not in base_names
            ),
            key=lambda p: p.identity,
        )
        manifest = FileManifest.concat(
            [package_manifest(p) for p in packages]
        )
        identity = tuple(p.identity for p in packages)
        return Layer.from_parts(
            label=f"svc:{primary}",
            identity_parts=("svc", identity),
            manifest=manifest,
        )

    def _data_layer(self, label: str) -> Layer:
        data = self.repo.get_user_data(label)
        return Layer.from_parts(
            label=f"data:{label}",
            identity_parts=("data", data.blob_key()),
            manifest=data.manifest,
        )

    # ------------------------------------------------------------------

    def containerize(self, vmi_name: str) -> ContainerImage:
        """One container carrying every service of a published VMI.

        Raises:
            NotInRepositoryError: the VMI was never published.
            RetrievalError: a recorded primary is missing from the
                master graph (repository corruption).
        """
        record = self.repo.get_vmi_record(vmi_name)
        master = self.repo.get_master_graph(record.base_key)
        layers: list[Layer] = [self._base_layer(master)]
        seen = {layers[0].digest}
        for primary in record.primary_names:
            if not master.has_package(primary):
                raise RetrievalError(
                    f"primary {primary!r} missing from master graph"
                )
            layer = self._service_layer(master, primary)
            if layer.digest not in seen:
                layers.append(layer)
                seen.add(layer.digest)
        if record.data_label is not None:
            layers.append(self._data_layer(record.data_label))
        return ContainerImage(
            name=f"{vmi_name}:latest",
            layers=tuple(layers),
            entrypoint=None,
        )

    def containerize_services(
        self, vmi_name: str
    ) -> list[ContainerImage]:
        """One single-service container per primary package.

        A VMI hosting MariaDB and Tomcat becomes two containers that
        share their base layer — the decomposition's isolation benefit
        the paper's Section I motivates.

        Raises:
            NotInRepositoryError / RetrievalError: as ``containerize``.
        """
        record = self.repo.get_vmi_record(vmi_name)
        master = self.repo.get_master_graph(record.base_key)
        base_layer = self._base_layer(master)
        images: list[ContainerImage] = []
        for primary in record.primary_names:
            if not master.has_package(primary):
                raise RetrievalError(
                    f"primary {primary!r} missing from master graph"
                )
            service = self._service_layer(master, primary)
            layers = (
                (base_layer, service)
                if service.digest != base_layer.digest
                else (base_layer,)
            )
            images.append(
                ContainerImage(
                    name=f"{vmi_name}/{primary}:latest",
                    layers=layers,
                    entrypoint=primary,
                )
            )
        return images
