"""OCI-style layered container images over file manifests.

A layer is content-addressed: its digest derives from *what produced
it* (the base image identity, a sorted set of package identities, or a
user-data label), so two containers built from the same packages share
layers byte-for-byte — the property registries exploit with blob
mounting and the property our containerization experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import combine
from repro.image.manifest import FileManifest

__all__ = ["Layer", "ContainerImage"]


@dataclass(frozen=True)
class Layer:
    """One filesystem layer of a container image."""

    #: human-readable provenance ("base:ubuntu-16.04", "pkg:redis...")
    label: str
    #: content digest — equal digests mean byte-identical layers
    digest: int
    manifest: FileManifest

    @property
    def size(self) -> int:
        """Uncompressed layer bytes."""
        return self.manifest.total_size

    @property
    def compressed_size(self) -> int:
        """Bytes shipped over the wire (layers travel gzipped)."""
        return self.manifest.compressed_size()

    @property
    def n_files(self) -> int:
        return self.manifest.n_files

    @classmethod
    def from_parts(
        cls, label: str, identity_parts: tuple, manifest: FileManifest
    ) -> "Layer":
        return cls(
            label=label,
            digest=combine("layer", *identity_parts),
            manifest=manifest,
        )


@dataclass(frozen=True)
class ContainerImage:
    """An ordered stack of layers plus an entrypoint annotation."""

    name: str
    layers: tuple[Layer, ...]
    #: the primary package the container serves (None for full-VMI
    #: conversions carrying several services)
    entrypoint: str | None = None

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"container {self.name!r} needs >= 1 layer")
        digests = [layer.digest for layer in self.layers]
        if len(set(digests)) != len(digests):
            raise ValueError(
                f"container {self.name!r} has duplicate layers"
            )

    @property
    def total_size(self) -> int:
        """Sum of uncompressed layer bytes (flattened rootfs size)."""
        return sum(layer.size for layer in self.layers)

    @property
    def wire_size(self) -> int:
        """Compressed bytes a cold pull would transfer."""
        return sum(layer.compressed_size for layer in self.layers)

    def layer_digests(self) -> tuple[int, ...]:
        return tuple(layer.digest for layer in self.layers)

    def find_layer(self, label_prefix: str) -> Layer | None:
        """First layer whose label starts with ``label_prefix``."""
        for layer in self.layers:
            if layer.label.startswith(label_prefix):
                return layer
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ContainerImage {self.name!r} layers={len(self.layers)} "
            f"size={self.total_size}>"
        )
