"""Automated VMI containerization (the paper's stated future work).

Section VII: "We also plan in the future to extend Expelliarmus to
support automated containerization of a VMI with multiple container
service functionality."  The semantic decomposition makes this almost
free: a published VMI already *is* a base image plus per-primary
package subgraphs plus user data — exactly a layered container image.

* :class:`~repro.containerize.layers.Layer` /
  :class:`~repro.containerize.layers.ContainerImage` — an OCI-style
  layered image over file manifests;
* :class:`~repro.containerize.registry.ContainerRegistry` — a
  layer-deduplicating registry (layers shared across images are stored
  once, like blob-mounted OCI layers);
* :class:`~repro.containerize.converter.Containerizer` — builds one
  container per VMI, or one *service container per primary package*
  ("multiple container service functionality").
"""

from repro.containerize.converter import Containerizer
from repro.containerize.layers import ContainerImage, Layer
from repro.containerize.registry import ContainerRegistry

__all__ = ["Containerizer", "ContainerImage", "Layer", "ContainerRegistry"]
