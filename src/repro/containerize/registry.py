"""A layer-deduplicating container registry.

Pushing an image stores only layers the registry has never seen
(content-addressed by digest); pulls transfer only layers the client
lacks.  Both operations are charged to the shared simulated clock so
containerization can be compared against VMI publish/retrieve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.containerize.layers import ContainerImage, Layer
from repro.errors import DuplicateEntryError, NotInRepositoryError
from repro.sim.clock import SimulatedClock
from repro.sim.costmodel import CostModel, CostParams

__all__ = ["ContainerRegistry", "PushReport", "PullReport"]


@dataclass(frozen=True)
class PushReport:
    image: str
    duration: float
    #: layers actually uploaded (digest misses)
    new_layers: int
    #: layers skipped because the registry already had them
    mounted_layers: int
    bytes_added: int


@dataclass(frozen=True)
class PullReport:
    image: str
    duration: float
    bytes_transferred: int


class ContainerRegistry:
    """Digest-addressed layer store + image index."""

    def __init__(self, params: CostParams | None = None) -> None:
        self.clock = SimulatedClock()
        self.cost = CostModel(params)
        self._layers: dict[int, Layer] = {}
        self._images: dict[str, ContainerImage] = {}

    # ------------------------------------------------------------------

    def push(self, image: ContainerImage) -> PushReport:
        """Store an image; identical layers are blob-mounted for free.

        Raises:
            DuplicateEntryError: image tag already pushed.
        """
        if image.name in self._images:
            raise DuplicateEntryError(
                f"image {image.name!r} already pushed"
            )
        new = mounted = added = 0
        with self.clock.measure() as breakdown:
            for layer in image.layers:
                if layer.digest in self._layers:
                    mounted += 1
                    self.clock.advance(
                        self.cost.metadata_update(), "mount"
                    )
                    continue
                # upload travels compressed
                self.clock.advance(
                    self.cost.gzip_bytes(layer.size), "compress"
                )
                self.clock.advance(
                    self.cost.write_bytes(layer.compressed_size),
                    "upload",
                )
                self._layers[layer.digest] = layer
                new += 1
                added += layer.compressed_size
        self._images[image.name] = image
        return PushReport(
            image=image.name,
            duration=breakdown.total,
            new_layers=new,
            mounted_layers=mounted,
            bytes_added=added,
        )

    def pull(
        self, name: str, cached_digests: frozenset[int] = frozenset()
    ) -> PullReport:
        """Transfer an image to a client holding ``cached_digests``.

        Raises:
            NotInRepositoryError: unknown image tag.
        """
        image = self.get(name)
        transferred = 0
        with self.clock.measure() as breakdown:
            for layer in image.layers:
                if layer.digest in cached_digests:
                    continue
                self.clock.advance(
                    self.cost.read_bytes(layer.compressed_size),
                    "download",
                )
                self.clock.advance(
                    self.cost.gzip_bytes(layer.size) / 3.0, "extract"
                )
                transferred += layer.compressed_size
        return PullReport(
            image=name,
            duration=breakdown.total,
            bytes_transferred=transferred,
        )

    # ------------------------------------------------------------------

    def get(self, name: str) -> ContainerImage:
        """Raises NotInRepositoryError for unknown tags."""
        try:
            return self._images[name]
        except KeyError:
            raise NotInRepositoryError("container image", name) from None

    def images(self) -> list[str]:
        return sorted(self._images)

    @property
    def stored_layers(self) -> int:
        return len(self._layers)

    @property
    def total_bytes(self) -> int:
        """Registry footprint (compressed layer bytes)."""
        return sum(
            layer.compressed_size for layer in self._layers.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ContainerRegistry images={len(self._images)} "
            f"layers={self.stored_layers} bytes={self.total_bytes}>"
        )
