"""Exception hierarchy for the Expelliarmus reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the major
subsystems: the guest-OS substrate, the disk-image substrate, the
repository, and the semantic management core.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CatalogError",
    "UnknownPackageError",
    "DependencyError",
    "PackageStateError",
    "ImageError",
    "HandleStateError",
    "RepositoryError",
    "NotInRepositoryError",
    "DuplicateEntryError",
    "LockTimeoutError",
    "WorkspaceError",
    "WorkspaceLockedError",
    "PublishError",
    "RetrievalError",
    "IncompatibleImageError",
    "GraphModelError",
]


class ReproError(Exception):
    """Base class for all library errors."""


# ---------------------------------------------------------------------------
# guest OS substrate
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Problems with the synthetic package catalog."""


class UnknownPackageError(CatalogError):
    """A package name was not found in the catalog or the guest."""

    def __init__(self, name: str, where: str = "catalog") -> None:
        super().__init__(f"package {name!r} not found in {where}")
        self.name = name
        self.where = where


class DependencyError(CatalogError):
    """Dependency resolution failed (missing or contradictory Depends)."""


class PackageStateError(ReproError):
    """An install/remove operation conflicts with the guest package state."""


# ---------------------------------------------------------------------------
# disk image substrate
# ---------------------------------------------------------------------------


class ImageError(ReproError):
    """Problems manipulating a (synthetic) disk image."""


class HandleStateError(ImageError):
    """A guestfs handle was used in the wrong lifecycle state."""


# ---------------------------------------------------------------------------
# repository
# ---------------------------------------------------------------------------


class RepositoryError(ReproError):
    """Problems with the VMI repository."""


class NotInRepositoryError(RepositoryError):
    """A requested object does not exist in the repository."""

    def __init__(self, kind: str, key: object) -> None:
        super().__init__(f"{kind} {key!r} is not stored in the repository")
        self.kind = kind
        self.key = key


class DuplicateEntryError(RepositoryError):
    """An object with the same identity is already stored."""


class LockTimeoutError(RepositoryError):
    """A repository lock acquisition did not succeed within its timeout.

    Raised by :class:`~repro.repository.locking.RepositoryLock` so
    callers distinguish contention (back off and retry) from the data
    errors the rest of the hierarchy names.
    """

    def __init__(self, mode: str, timeout: float) -> None:
        super().__init__(
            f"could not acquire the repository {mode} lock within "
            f"{timeout:.3f} s"
        )
        self.mode = mode
        self.timeout = timeout


class WorkspaceError(RepositoryError):
    """A durable workspace (snapshot + op-log) is unusable as found —
    mismatched snapshot/op-log pair, unreadable op-log header, or an
    op the replayer does not know."""


class WorkspaceLockedError(WorkspaceError):
    """Another live process holds the workspace's advisory lock.

    The workspace is healthy — it just cannot be opened *now*.  Callers
    (the CLI in particular) fail fast with the holder's pid instead of
    interleaving two processes' journals over one op-log.
    """

    def __init__(self, path, holder_pid: int) -> None:
        super().__init__(
            f"workspace {path} is locked by running process "
            f"{holder_pid} — wait for it to finish (the lock is "
            f"released the moment its holder exits, cleanly or not)"
        )
        self.path = path
        self.holder_pid = holder_pid


# ---------------------------------------------------------------------------
# semantic management core
# ---------------------------------------------------------------------------


class PublishError(ReproError):
    """VMI publishing (Algorithm 1) failed."""


class RetrievalError(ReproError):
    """VMI retrieval (Algorithm 3) failed."""


class IncompatibleImageError(RetrievalError):
    """Requested packages are not semantically compatible with any base."""


class GraphModelError(ReproError):
    """A semantic graph violates the model of Section III."""
