"""Exception hierarchy for the Expelliarmus reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the major
subsystems: the guest-OS substrate, the disk-image substrate, the
repository, and the semantic management core.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "ReproError",
    "CatalogError",
    "UnknownPackageError",
    "DependencyError",
    "PackageStateError",
    "ImageError",
    "HandleStateError",
    "RepositoryError",
    "NotInRepositoryError",
    "DuplicateEntryError",
    "LockTimeoutError",
    "WorkspaceError",
    "WorkspaceLockedError",
    "PublishError",
    "RetrievalError",
    "IncompatibleImageError",
    "GraphModelError",
    "ServiceError",
    "ProtocolError",
    "AdmissionRejectedError",
    "QuotaExceededError",
    "UnknownTenantError",
    "RemoteError",
]


class ReproError(Exception):
    """Base class for all library errors."""


# ---------------------------------------------------------------------------
# guest OS substrate
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Problems with the synthetic package catalog."""


class UnknownPackageError(CatalogError):
    """A package name was not found in the catalog or the guest."""

    def __init__(self, name: str, where: str = "catalog") -> None:
        super().__init__(f"package {name!r} not found in {where}")
        self.name = name
        self.where = where


class DependencyError(CatalogError):
    """Dependency resolution failed (missing or contradictory Depends)."""


class PackageStateError(ReproError):
    """An install/remove operation conflicts with the guest package state."""


# ---------------------------------------------------------------------------
# disk image substrate
# ---------------------------------------------------------------------------


class ImageError(ReproError):
    """Problems manipulating a (synthetic) disk image."""


class HandleStateError(ImageError):
    """A guestfs handle was used in the wrong lifecycle state."""


# ---------------------------------------------------------------------------
# repository
# ---------------------------------------------------------------------------


class RepositoryError(ReproError):
    """Problems with the VMI repository."""


class NotInRepositoryError(RepositoryError):
    """A requested object does not exist in the repository."""

    def __init__(self, kind: str, key: object) -> None:
        super().__init__(f"{kind} {key!r} is not stored in the repository")
        self.kind = kind
        self.key = key


class DuplicateEntryError(RepositoryError):
    """An object with the same identity is already stored."""


class LockTimeoutError(RepositoryError):
    """A repository lock acquisition did not succeed within its timeout.

    Raised by :class:`~repro.repository.locking.RepositoryLock` so
    callers distinguish contention (back off and retry) from the data
    errors the rest of the hierarchy names.
    """

    def __init__(self, mode: str, timeout: float) -> None:
        super().__init__(
            f"could not acquire the repository {mode} lock within "
            f"{timeout:.3f} s"
        )
        self.mode = mode
        self.timeout = timeout


class WorkspaceError(RepositoryError):
    """A durable workspace (snapshot + op-log) is unusable as found —
    mismatched snapshot/op-log pair, unreadable op-log header, or an
    op the replayer does not know."""


class WorkspaceLockedError(WorkspaceError):
    """Another live process holds the workspace's advisory lock.

    The workspace is healthy — it just cannot be opened *now*.  Callers
    (the CLI in particular) fail fast with the holder's pid instead of
    interleaving two processes' journals over one op-log.
    """

    def __init__(self, path: str | Path, holder_pid: int) -> None:
        super().__init__(
            f"workspace {path} is locked by running process "
            f"{holder_pid} — wait for it to finish (the lock is "
            f"released the moment its holder exits, cleanly or not)"
        )
        self.path = path
        self.holder_pid = holder_pid


# ---------------------------------------------------------------------------
# image service (server / remote client)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Problems in the multi-tenant image service layer."""


class ProtocolError(ServiceError):
    """A wire frame or message violates the service protocol —
    oversized, torn mid-frame, not JSON, or structurally invalid."""


class AdmissionRejectedError(ServiceError):
    """The server refused to take the request *right now* (429-style).

    The request itself is well-formed; the server is protecting itself
    (bounded queue full, per-tenant in-flight ceiling, drain in
    progress).  ``retriable`` is always True — clients back off and
    retry, which is exactly what open-loop traffic generators and the
    CLI do not do silently: they surface the machine-readable
    ``code``.
    """

    retriable = True

    def __init__(
        self, code: str, message: str, *, tenant: str | None = None
    ) -> None:
        super().__init__(message)
        #: machine-readable reason: "overloaded", "tenant-busy",
        #: "draining"
        self.code = code
        self.tenant = tenant


class QuotaExceededError(ServiceError):
    """A tenant's stored-bytes quota cannot fit the request (413-style).

    Not retriable as-is: the tenant must delete images (and let GC
    reclaim them) or be granted a larger quota.
    """

    retriable = False

    def __init__(
        self,
        tenant: str,
        *,
        requested_bytes: int,
        used_bytes: int,
        limit_bytes: int,
    ) -> None:
        super().__init__(
            f"tenant {tenant!r} quota exceeded: storing "
            f"{requested_bytes} bytes on top of {used_bytes} would "
            f"pass the {limit_bytes}-byte limit"
        )
        self.tenant = tenant
        self.requested_bytes = requested_bytes
        self.used_bytes = used_bytes
        self.limit_bytes = limit_bytes


class UnknownTenantError(ServiceError):
    """The server runs a closed tenant registry and this name is not
    in it."""

    def __init__(self, tenant: str) -> None:
        super().__init__(
            f"unknown tenant {tenant!r} (the server registry is "
            "closed; ask the operator to register the tenant)"
        )
        self.tenant = tenant


class RemoteError(ServiceError):
    """A server-side failure that maps to no more specific class.

    Carries the server's machine-readable ``code`` so scripted
    clients can still branch on it.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# semantic management core
# ---------------------------------------------------------------------------


class PublishError(ReproError):
    """VMI publishing (Algorithm 1) failed."""


class RetrievalError(ReproError):
    """VMI retrieval (Algorithm 3) failed."""


class IncompatibleImageError(RetrievalError):
    """Requested packages are not semantically compatible with any base."""


class GraphModelError(ReproError):
    """A semantic graph violates the model of Section III."""
