"""Exception hierarchy for the Expelliarmus reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the major
subsystems: the guest-OS substrate, the disk-image substrate, the
repository, and the semantic management core.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CatalogError",
    "UnknownPackageError",
    "DependencyError",
    "PackageStateError",
    "ImageError",
    "HandleStateError",
    "RepositoryError",
    "NotInRepositoryError",
    "DuplicateEntryError",
    "WorkspaceError",
    "PublishError",
    "RetrievalError",
    "IncompatibleImageError",
    "GraphModelError",
]


class ReproError(Exception):
    """Base class for all library errors."""


# ---------------------------------------------------------------------------
# guest OS substrate
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Problems with the synthetic package catalog."""


class UnknownPackageError(CatalogError):
    """A package name was not found in the catalog or the guest."""

    def __init__(self, name: str, where: str = "catalog") -> None:
        super().__init__(f"package {name!r} not found in {where}")
        self.name = name
        self.where = where


class DependencyError(CatalogError):
    """Dependency resolution failed (missing or contradictory Depends)."""


class PackageStateError(ReproError):
    """An install/remove operation conflicts with the guest package state."""


# ---------------------------------------------------------------------------
# disk image substrate
# ---------------------------------------------------------------------------


class ImageError(ReproError):
    """Problems manipulating a (synthetic) disk image."""


class HandleStateError(ImageError):
    """A guestfs handle was used in the wrong lifecycle state."""


# ---------------------------------------------------------------------------
# repository
# ---------------------------------------------------------------------------


class RepositoryError(ReproError):
    """Problems with the VMI repository."""


class NotInRepositoryError(RepositoryError):
    """A requested object does not exist in the repository."""

    def __init__(self, kind: str, key: object) -> None:
        super().__init__(f"{kind} {key!r} is not stored in the repository")
        self.kind = kind
        self.key = key


class DuplicateEntryError(RepositoryError):
    """An object with the same identity is already stored."""


class WorkspaceError(RepositoryError):
    """A durable workspace (snapshot + op-log) is unusable as found —
    mismatched snapshot/op-log pair, unreadable op-log header, or an
    op the replayer does not know."""


# ---------------------------------------------------------------------------
# semantic management core
# ---------------------------------------------------------------------------


class PublishError(ReproError):
    """VMI publishing (Algorithm 1) failed."""


class RetrievalError(ReproError):
    """VMI retrieval (Algorithm 3) failed."""


class IncompatibleImageError(RetrievalError):
    """Requested packages are not semantically compatible with any base."""


class GraphModelError(ReproError):
    """A semantic graph violates the model of Section III."""
