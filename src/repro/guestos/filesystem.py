"""Guest filesystem content, derived deterministically from packages.

Every package's on-disk file population is a pure function of the
package identity, so two VMIs that install the same package version hold
byte-identical files — the property file-level dedup (Mirage, Hemera)
exploits and block-level tools approximate.

Manifests are cached per package identity: the 40-IDE-build scenario
touches the same ~200 packages over and over, and sharing the numpy
arrays keeps the whole corpus in a few tens of megabytes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.image.manifest import FileManifest
from repro.model.attributes import BaseImageAttrs
from repro.model.package import Package

__all__ = ["GuestFilesystem", "package_manifest", "skeleton_manifest"]


@lru_cache(maxsize=4096)
def _manifest_for(
    name: str, version: str, arch: str, n_files: int, size: int, ratio: float
) -> FileManifest:
    return FileManifest.synthesize(
        seed=f"pkgfiles/{name}={version}:{arch}",
        n_files=n_files,
        total_size=size,
        gzip_ratio=ratio,
    )


def package_manifest(pkg: Package) -> FileManifest:
    """The deterministic file population of an installed package."""
    return _manifest_for(
        pkg.name,
        str(pkg.version),
        pkg.arch,
        pkg.n_files,
        pkg.installed_size,
        pkg.gzip_ratio,
    )


@lru_cache(maxsize=128)
def skeleton_manifest(
    attrs: BaseImageAttrs, n_files: int, total_size: int
) -> FileManifest:
    """Files of a base OS that no package owns (installer state, /etc)."""
    return FileManifest.synthesize(
        seed=f"skeleton/{attrs}",
        n_files=n_files,
        total_size=total_size,
        gzip_ratio=0.30,
    )


class GuestFilesystem:
    """A guest filesystem as a map from *owner* to file manifest.

    Owners are packages, the OS skeleton, or user-data labels.  The class
    is a thin, explicit container used by substrate-level code and tests;
    :class:`~repro.model.vmi.VirtualMachineImage` embeds the same
    structure directly for the algorithm hot paths.
    """

    def __init__(self) -> None:
        self._owners: dict[str, FileManifest] = {}

    def add_owner(self, key: str, manifest: FileManifest) -> None:
        """Register an owner's files.

        Raises:
            KeyError: if the owner already holds files.
        """
        if key in self._owners:
            raise KeyError(f"owner {key!r} already present")
        self._owners[key] = manifest

    def remove_owner(self, key: str) -> FileManifest:
        """Delete an owner's files, returning the manifest.

        Raises:
            KeyError: if the owner is unknown.
        """
        return self._owners.pop(key)

    def has_owner(self, key: str) -> bool:
        return key in self._owners

    def owners(self) -> list[str]:
        return list(self._owners)

    def manifest_of(self, key: str) -> FileManifest:
        return self._owners[key]

    def full_manifest(self) -> FileManifest:
        return FileManifest.concat(list(self._owners.values()))

    @property
    def total_size(self) -> int:
        return sum(m.total_size for m in self._owners.values())

    @property
    def n_files(self) -> int:
        return sum(m.n_files for m in self._owners.values())

    def __len__(self) -> int:
        return len(self._owners)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GuestFilesystem owners={len(self._owners)} "
            f"files={self.n_files} bytes={self.total_size}>"
        )
