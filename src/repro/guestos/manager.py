"""APT-style package manager driving a VirtualMachineImage.

Where the paper runs ``apt-get install`` inside the guest through
libguestfs, the reproduction drives the same state machine directly:
resolution against the catalog, installation with auto/manual marks,
removal, and autoremove of orphaned dependencies.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import UnknownPackageError
from repro.guestos.catalog import Catalog, InstallPlan
from repro.model.graph import PackageRole
from repro.model.package import Package
from repro.model.vmi import VirtualMachineImage

__all__ = ["PackageManager"]


class PackageManager:
    """Installs and removes packages on one guest image."""

    def __init__(self, catalog: Catalog, vmi: VirtualMachineImage) -> None:
        self.catalog = catalog
        self.vmi = vmi

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _installed_versions(self) -> dict[str, Package]:
        return {
            rec.name: rec.package for rec in self.vmi.installed_packages()
        }

    def plan_install(self, names: Iterable[str]) -> InstallPlan:
        """Resolve ``names`` against the catalog and current guest state."""
        return self.catalog.resolve(
            names, preinstalled=self._installed_versions()
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def install(
        self,
        names: Iterable[str],
        *,
        role: PackageRole = PackageRole.PRIMARY,
    ) -> InstallPlan:
        """Install ``names`` plus dependencies; returns the executed plan.

        Requested packages get ``role`` (primary by default); pulled-in
        dependencies are recorded with the dependency role and the auto
        mark, exactly like ``apt-get install``.
        """
        requested = list(names)
        plan = self.plan_install(requested)
        requested_set = set(requested)
        for step in plan:
            pkg_role = role if step.package.name in requested_set else (
                PackageRole.DEPENDENCY
            )
            self.vmi.install_package(
                step.package, pkg_role, auto=step.auto
            )
        # a requested name that was already installed will not appear in
        # the plan; still promote its role (apt marks it manual).
        for name in requested_set:
            rec = self.vmi.installed(name)
            if rec is None:
                raise UnknownPackageError(name, where="guest after install")
            if role is PackageRole.PRIMARY:
                rec.role = PackageRole.PRIMARY
                rec.auto = False
        return plan

    def install_package_object(
        self, pkg: Package, *, role: PackageRole, auto: bool = False
    ) -> None:
        """Install one concrete package version without re-resolving.

        Used by the VMI assembler, which imports exact stored versions
        from the local repository rather than asking the archive.
        """
        self.vmi.install_package(pkg, role, auto=auto)

    def remove(self, name: str) -> Package:
        """Remove one package (not its dependencies).

        Raises:
            PackageStateError: if ``name`` is not removable (not
                installed, or part of the base OS).
        """
        return self.vmi.remove_package(name)

    def autoremove(self) -> list[str]:
        """Remove all orphaned auto-installed dependencies."""
        return self.vmi.remove_unused_dependencies()

    def purge(self, names: Iterable[str]) -> list[str]:
        """Remove ``names`` then autoremove; returns everything removed."""
        removed: list[str] = []
        for name in names:
            self.remove(name)
            removed.append(name)
        removed.extend(self.autoremove())
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PackageManager vmi={self.vmi.name!r}>"
