"""The distribution package catalog and its dependency resolver.

The catalog plays the role of the Ubuntu archive: it knows every
available package version and answers APT-style resolution queries —
"give me an ordered install plan for these names, honouring version
constraints, tolerating dependency cycles".

Cycles are first-class: libc6, dpkg and perl-base depend on each other
(Figure 1a of the paper), so the resolver works on the strongly-connected
condensation rather than assuming a DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import DependencyError, UnknownPackageError
from repro.model.package import DependencySpec, Package

__all__ = ["Catalog", "InstallPlan", "PlanStep"]


@dataclass(frozen=True)
class PlanStep:
    """One package of an install plan, with its auto/manual mark."""

    package: Package
    #: True when the package is pulled in purely as a dependency.
    auto: bool


@dataclass(frozen=True)
class InstallPlan:
    """An ordered, dependency-closed install plan.

    The order is a reverse-topological order of the dependency graph's
    condensation (dependencies first), so installing sequentially never
    references a missing package.  Members of a dependency cycle appear
    consecutively ("they need to be provided and installed together",
    Section III-B).
    """

    steps: tuple[PlanStep, ...]

    def packages(self) -> list[Package]:
        return [s.package for s in self.steps]

    def names(self) -> list[str]:
        return [s.package.name for s in self.steps]

    def total_installed_size(self) -> int:
        return sum(s.package.installed_size for s in self.steps)

    def total_deb_size(self) -> int:
        return sum(s.package.deb_size for s in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[PlanStep]:
        return iter(self.steps)


class Catalog:
    """All package versions the synthetic distribution offers."""

    def __init__(self, packages: Iterable[Package] = ()) -> None:
        self._versions: dict[str, list[Package]] = {}
        for pkg in packages:
            self.add(pkg)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    def add(self, pkg: Package) -> None:
        """Register a package version.

        Raises:
            DependencyError: if the exact version is already present.
        """
        versions = self._versions.setdefault(pkg.name, [])
        if any(v.identity == pkg.identity for v in versions):
            raise DependencyError(
                f"catalog already contains {pkg.name} {pkg.version}"
            )
        versions.append(pkg)
        versions.sort(key=lambda p: p.version)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._versions

    def __len__(self) -> int:
        return sum(len(v) for v in self._versions.values())

    def names(self) -> list[str]:
        return sorted(self._versions)

    def versions_of(self, name: str) -> list[Package]:
        """All known versions, oldest first.

        Raises:
            UnknownPackageError: for names not in the catalog.
        """
        try:
            return list(self._versions[name])
        except KeyError:
            raise UnknownPackageError(name) from None

    def latest(self, name: str) -> Package:
        """The newest version of ``name``."""
        return self.versions_of(name)[-1]

    def best_candidate(self, spec: DependencySpec) -> Package:
        """Newest version satisfying ``spec``.

        Raises:
            UnknownPackageError: unknown name.
            DependencyError: no version satisfies the constraint.
        """
        for pkg in reversed(self.versions_of(spec.name)):
            if spec.satisfied_by(pkg.version):
                return pkg
        raise DependencyError(f"no version of {spec.name} satisfies {spec}")

    def essential_packages(self) -> list[Package]:
        """Latest version of every essential package (the minimal OS)."""
        return [
            self.latest(name)
            for name in self.names()
            if self.latest(name).essential
        ]

    def all_packages(self) -> list[Package]:
        return [p for vs in self._versions.values() for p in vs]

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def resolve(
        self,
        requested: Iterable[str],
        *,
        preinstalled: dict[str, Package] | None = None,
    ) -> InstallPlan:
        """Compute an install plan for ``requested`` package names.

        ``preinstalled`` maps names to versions already on the guest
        (typically the base image's packages): these are not re-planned,
        but every dependency constraint pointing at them is *verified*,
        and an unsatisfiable constraint raises.

        Raises:
            UnknownPackageError: a requested or depended-on name is
                neither in the catalog nor preinstalled.
            DependencyError: a version constraint cannot be met.
        """
        preinstalled = dict(preinstalled or {})
        requested = list(requested)
        chosen: dict[str, Package] = {}
        manual: set[str] = set()

        # -- closure ----------------------------------------------------
        frontier: list[DependencySpec] = []
        for name in requested:
            manual.add(name)
            frontier.append(DependencySpec(name))
        while frontier:
            spec = frontier.pop()
            if spec.name in preinstalled:
                if not spec.satisfied_by(preinstalled[spec.name].version):
                    raise DependencyError(
                        f"installed {spec.name} "
                        f"{preinstalled[spec.name].version} does not "
                        f"satisfy {spec}"
                    )
                continue
            if spec.name in chosen:
                if not spec.satisfied_by(chosen[spec.name].version):
                    raise DependencyError(
                        f"selected {spec.name} {chosen[spec.name].version} "
                        f"does not satisfy {spec}"
                    )
                continue
            pkg = self.best_candidate(spec)
            chosen[spec.name] = pkg
            frontier.extend(pkg.depends)

        # -- order: dependencies first, cycles kept adjacent -------------
        order = _dependency_order(chosen, preinstalled)
        steps = tuple(
            PlanStep(package=chosen[name], auto=name not in manual)
            for name in order
        )
        return InstallPlan(steps=steps)


def _dependency_order(
    chosen: dict[str, Package], preinstalled: dict[str, Package]
) -> list[str]:
    """Reverse-topological order over the condensation of Depends.

    Implemented with an iterative Tarjan SCC so dependency cycles
    (libc6 / dpkg / perl-base) cannot blow the recursion limit and their
    members stay consecutive in the plan.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(chosen)
    for name, pkg in chosen.items():
        for dep in pkg.dependency_names():
            if dep in chosen:
                g.add_edge(name, dep)
    condensation = nx.condensation(g)
    # condensation is a DAG; topological order gives dependents first,
    # so reverse it to install dependencies first.
    order: list[str] = []
    for scc_id in reversed(list(nx.topological_sort(condensation))):
        members = sorted(condensation.nodes[scc_id]["members"])
        order.extend(members)
    return order
