"""Synthetic guest-OS substrate.

The paper's implementation shells into real Ubuntu guests through
libguestfs and drives APT/dpkg.  This subpackage is the laptop-scale
equivalent: a deterministic package :class:`~repro.guestos.catalog.Catalog`
(the distribution archive), a :class:`~repro.guestos.manager.PackageManager`
with APT semantics (dependency resolution, auto/manual marks,
autoremove), and deterministic per-package file manifests
(:func:`~repro.guestos.filesystem.package_manifest`).
"""

from repro.guestos.catalog import Catalog, InstallPlan
from repro.guestos.filesystem import (
    GuestFilesystem,
    package_manifest,
    skeleton_manifest,
)
from repro.guestos.manager import PackageManager
from repro.guestos.pkgdb import PackageQuery

__all__ = [
    "Catalog",
    "InstallPlan",
    "GuestFilesystem",
    "package_manifest",
    "skeleton_manifest",
    "PackageManager",
    "PackageQuery",
]
