"""Read-only dpkg-style queries over a guest image.

``PackageQuery`` is the reproduction's ``dpkg -l`` / ``dpkg -L`` /
``apt-mark showauto``: the semantic analyzer uses it to fetch the
information the paper extracts by executing package-management commands
through libguestfs (Section V-2).
"""

from __future__ import annotations

from repro.errors import UnknownPackageError
from repro.image.manifest import FileManifest
from repro.guestos.filesystem import package_manifest
from repro.model.graph import PackageRole
from repro.model.vmi import InstalledPackage, VirtualMachineImage

__all__ = ["PackageQuery"]


class PackageQuery:
    """dpkg/apt-mark style introspection of one guest."""

    def __init__(self, vmi: VirtualMachineImage) -> None:
        self.vmi = vmi

    def list_installed(self) -> list[InstalledPackage]:
        """``dpkg -l``: every installed package record."""
        return self.vmi.installed_packages()

    def status(self, name: str) -> InstalledPackage:
        """``dpkg -s NAME``.

        Raises:
            UnknownPackageError: when not installed.
        """
        rec = self.vmi.installed(name)
        if rec is None:
            raise UnknownPackageError(name, where="guest")
        return rec

    def owned_files(self, name: str) -> FileManifest:
        """``dpkg -L NAME``: the file population owned by a package."""
        return package_manifest(self.status(name).package)

    def show_auto(self) -> list[str]:
        """``apt-mark showauto``: auto-installed package names."""
        return sorted(
            rec.name
            for rec in self.vmi.installed_packages()
            if rec.auto
        )

    def show_manual(self) -> list[str]:
        """``apt-mark showmanual``."""
        return sorted(
            rec.name
            for rec in self.vmi.installed_packages()
            if not rec.auto
        )

    def primaries(self) -> list[str]:
        """Names with the primary role (the user-facing package set)."""
        return sorted(self.vmi.primary_names())

    def base_members(self) -> list[str]:
        """Names shipped by the base OS."""
        return sorted(
            rec.name
            for rec in self.vmi.installed_packages()
            if rec.role is PackageRole.BASE_MEMBER
        )

    def dependencies(self) -> list[str]:
        """Names installed purely as dependencies (the set ``DS``)."""
        return sorted(
            rec.name
            for rec in self.vmi.installed_packages()
            if rec.role is PackageRole.DEPENDENCY
        )
