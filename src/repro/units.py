"""Byte and time unit helpers used throughout the reproduction.

All sizes in the library are plain ``int`` byte counts and all simulated
durations are ``float`` seconds.  This module centralises the conversion
constants and the human-readable formatting used by the experiment
reporters so that every table prints sizes the same way the paper does
(GB with two decimals, seconds with two decimals).
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "kb",
    "mb",
    "gb",
    "fmt_bytes",
    "fmt_gb",
    "fmt_seconds",
    "parse_size",
]

#: One kilobyte (decimal, as disk vendors and the paper use).
KB: int = 1000
#: One megabyte.
MB: int = 1000 * KB
#: One gigabyte.
GB: int = 1000 * MB
#: One terabyte.
TB: int = 1000 * GB


def kb(n: float) -> int:
    """Return ``n`` kilobytes as an integer byte count."""
    return int(n * KB)


def mb(n: float) -> int:
    """Return ``n`` megabytes as an integer byte count."""
    return int(n * MB)


def gb(n: float) -> int:
    """Return ``n`` gigabytes as an integer byte count."""
    return int(n * GB)


def fmt_bytes(n: int) -> str:
    """Format a byte count with an adaptive unit suffix.

    >>> fmt_bytes(1536)
    '1.54 KB'
    >>> fmt_bytes(2_500_000_000)
    '2.50 GB'
    """
    value = float(n)
    for unit, scale in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{int(value)} B"


def fmt_gb(n: int) -> str:
    """Format a byte count in gigabytes, the unit used by Figure 3."""
    return f"{n / GB:.2f} GB"


def fmt_seconds(t: float) -> str:
    """Format a simulated duration in seconds, as used by Figures 4-5."""
    return f"{t:.2f} s"


def parse_size(text: str) -> int:
    """Parse a human size string (``"1.5GB"``, ``"300 MB"``, ``"42"``).

    Raises:
        ValueError: if the string is not a recognisable size.
    """
    s = text.strip().upper().replace(" ", "")
    for unit, scale in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)):
        if s.endswith(unit):
            return int(float(s[: -len(unit)]) * scale)
    return int(float(s))
