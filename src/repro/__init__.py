"""Expelliarmus — semantics-aware VMI management (IPDPS 2019 repro).

Reproduction of Saurabh et al., "Semantics-aware Virtual Machine Image
Management in IaaS Clouds" (IPDPS 2019): the Expelliarmus system, the
comparison schemes it is evaluated against (Qcow2, Qcow2+Gzip, IBM
Mirage, Hemera), the full synthetic substrate (guest OS, package
manager, disk images, deterministic performance model), and one
experiment harness per table/figure of the paper's evaluation.

Quickstart
----------

>>> from repro import Expelliarmus, standard_corpus
>>> system = Expelliarmus()
>>> corpus = standard_corpus()
>>> report = system.publish(corpus.build("Redis"))
>>> result = system.retrieve("Redis")
>>> result.vmi.has_package("redis-server")
True

See ``examples/`` for runnable scenarios, ``repro.experiments`` for the
paper's tables and figures, and DESIGN.md for the system inventory.
"""

from repro.core.system import Expelliarmus
from repro.model.attributes import BaseImageAttrs, PackageAttrs
from repro.repository.workspace import Workspace
from repro.model.graph import PackageRole, SemanticGraph
from repro.model.package import DependencySpec, Package, make_package
from repro.model.versions import Version
from repro.model.vmi import BaseImage, UserData, VirtualMachineImage
from repro.similarity import (
    base_similarity,
    graph_similarity,
    is_compatible,
    package_similarity,
    semantic_compatibility,
)
from repro.workloads.generator import Corpus, standard_corpus

__version__ = "1.0.0"

__all__ = [
    "Expelliarmus",
    "Workspace",
    "BaseImageAttrs",
    "PackageAttrs",
    "PackageRole",
    "SemanticGraph",
    "DependencySpec",
    "Package",
    "make_package",
    "Version",
    "BaseImage",
    "UserData",
    "VirtualMachineImage",
    "base_similarity",
    "graph_similarity",
    "is_compatible",
    "package_similarity",
    "semantic_compatibility",
    "Corpus",
    "standard_corpus",
    "__version__",
]
