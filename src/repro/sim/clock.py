"""Simulated wall clock with labelled time accounting.

Every expensive operation in the substrate advances a
:class:`SimulatedClock` by a model-derived duration, tagged with a label
(``"base-copy"``, ``"import"`` ...).  Figure 5a needs exactly this
breakdown: retrieval time split into base-image copy, guestfs handle
creation, VMI reset and package import.

Thread safety (DESIGN.md §12): one clock may be shared by the parallel
service executors.  ``now`` accumulates under a mutex and therefore
counts the *summed* work of all threads; measurement windows are
*thread-local*, so a ``measure()`` block captures exactly the time its
own thread charged — per-item breakdowns stay correct when items run on
worker threads, and the executors derive critical-path (overlapped)
time from the per-shard sums instead of this global total.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SimulatedClock", "TimeBreakdown"]


@dataclass
class TimeBreakdown:
    """Per-label durations of one measured operation."""

    totals: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def component(self, label: str) -> float:
        return self.totals.get(label, 0.0)

    def merged(self, other: "TimeBreakdown") -> "TimeBreakdown":
        merged: dict[str, float] = dict(self.totals)
        for k, v in other.totals.items():
            merged[k] = merged.get(k, 0.0) + v
        return TimeBreakdown(totals=merged)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{k}={v:.2f}s" for k, v in self.totals.items())
        return f"<TimeBreakdown {parts} total={self.total:.2f}s>"


class SimulatedClock:
    """Monotonic simulated time with nested measurement windows."""

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _windows(self) -> list[dict[str, float]]:
        """This thread's stack of open measurement windows."""
        stack: list[dict[str, float]] | None = getattr(
            self._local, "windows", None
        )
        if stack is None:
            stack = []
            self._local.windows = stack
        return stack

    @property
    def now(self) -> float:
        """Simulated seconds charged so far (summed across threads)."""
        return self._now

    def advance(self, seconds: float, label: str = "other") -> None:
        """Advance time; negative durations are a programming error."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        with self._lock:
            self._now += seconds
        for window in self._windows:
            window[label] = window.get(label, 0.0) + seconds

    @contextmanager
    def measure(self) -> Iterator[TimeBreakdown]:
        """Capture all time charged inside the ``with`` block.

        The yielded :class:`TimeBreakdown` fills in as the block runs and
        is complete when the block exits.  Windows nest: an inner measure
        does not steal time from an outer one.
        """
        window: dict[str, float] = {}
        breakdown = TimeBreakdown(totals=window)
        self._windows.append(window)
        try:
            yield breakdown
        finally:
            self._windows.pop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimulatedClock now={self._now:.3f}s>"
