"""The calibrated I/O and package-operation cost model.

Every duration the experiments report is composed from these primitives.
The constants are calibrated once (see the table below) against the
anchor points the paper states explicitly, then *never* tuned per
experiment — all figures are emergent from the same model.

Calibration anchors (paper, Section VI):

* publishing the first (Mini) image ≈ 39.5 s and is dominated by storing
  the 1.9 GB base — repository write bandwidth ≈ 50 MB/s (an external
  SSD over USB);
* retrieving Mini ≈ 24.6 s with roughly equal copy / handle / reset
  parts — repository read ≈ 150 MB/s, guestfs launch ≈ 4 s, sysprep
  reset ≈ 5 s;
* similarity computation "less than 100 ms per VMI";
* Mirage/Hemera publishing "seconds to a few minutes" for ~80 k files —
  per-file hash+index ≈ 1.8 ms;
* Mirage reads many small files inefficiently; Hemera serves small files
  from its database much faster (Elastic Stack: 129.8 s vs 99.9 s for
  Expelliarmus).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.package import Package
from repro.units import MB

__all__ = ["COST_LABELS", "CostParams", "CostModel"]

#: every label a simulated-time charge may be attributed to.  The
#: per-label breakdowns (figure stacking, measure windows) group by
#: these strings, so an unregistered spelling silently opens a new
#: bucket and the columns stop adding up — reprolint rule RL005 checks
#: every literal ``clock.advance(seconds, label)`` site against this
#: registry (DESIGN.md §16).  Keep the set literal: the check is
#: static.
COST_LABELS = frozenset({
    # Expelliarmus publish/retrieve (core/)
    "export",       # dpkg-repack + ship one package to the repo
    "import",       # copy + install one package on the guest
    "remove",       # purge one package during decomposition
    "select-base",  # Algorithm 2 base-selection metadata probes
    "store-base",   # writing a new base qcow2 to the repository
    "base-copy",    # materialising a base copy (cold read or warm clone)
    "reset",        # virt-sysprep reset of the base copy
    "handle",       # guestfs appliance launch
    "similarity",   # SimG scoring against one master graph
    "metadata",     # SQLite graph/record metadata updates
    # deletion / garbage collection
    "delete",       # dropping a published-VMI record
    "gc",           # sweep + master-graph rebuild work
    # base mining / re-base maintenance (analysis/ + service/)
    "mine",         # SimG pre-grouping + coverage proofs over masters
    "rebase",       # merged-base store, master merge, record migration
    # baseline schemes (baselines/)
    "write",        # raw repository write bandwidth
    "read",         # raw repository read bandwidth
    "gzip",         # compressing a qcow2 (gzip baseline)
    "gunzip",       # decompressing a qcow2 (gzip baseline)
    "index",        # per-file hash+index on publish (Mirage/Hemera)
    "lookup",       # block-store dedup lookups
    # containerize pipeline
    "mount",        # mounting the VMI for layer extraction
    "compress",     # compressing one layer tarball
    "upload",       # pushing layers to the registry
    "download",     # pulling layers from the registry
    "extract",      # unpacking layers into a rootfs
    # fallback bucket for uncategorised charges
    "other",
})


@dataclass(frozen=True)
class CostParams:
    """All tunable constants of the performance model."""

    # -- repository I/O -------------------------------------------------
    #: sequential write bandwidth to the repository disk (B/s)
    repo_write_bw: float = 50 * MB
    #: sequential read bandwidth from the repository disk (B/s)
    repo_read_bw: float = 150 * MB

    # -- libguestfs appliance --------------------------------------------
    #: launching a guestfs handle (qemu appliance boot)
    guestfs_launch_s: float = 4.0
    #: virt-sysprep reset of a base image
    vmi_reset_s: float = 5.0
    #: cloning an already-warm local base copy (reflink/COW metadata
    #: work) instead of re-reading the qcow2 from the repository disk
    base_clone_s: float = 0.2

    # -- file-granular stores (Mirage / Hemera) --------------------------
    #: hashing + indexing one file on publish
    per_file_hash_s: float = 0.0025
    #: per-file metadata overhead when reading from a filesystem store
    fs_file_read_s: float = 0.0035
    #: per-file overhead when reading small files from a database store
    db_file_read_s: float = 0.0009
    #: extra penalty factor Mirage pays on sub-megabyte files
    small_file_penalty: float = 1.35

    # -- package operations (Expelliarmus) --------------------------------
    #: fixed cost of repacking one installed package into a .deb
    deb_repack_fixed_s: float = 1.2
    #: throughput of repacking installed bytes into a .deb (B/s);
    #: dpkg-repack reads, tars and compresses the installed payload
    deb_repack_bw: float = 10 * MB
    #: per-file metadata cost while repacking (md5sums manifest, tar
    #: headers) — why jar-exploded payloads (Elastic Stack: ~28 k files
    #: in 3 packages) publish slowly despite the low package count
    per_file_export_s: float = 0.003
    #: fixed cost of installing one package (dpkg bookkeeping)
    pkg_install_fixed_s: float = 0.35
    #: throughput of unpacking installed bytes onto the guest (B/s);
    #: calibrated from Elastic Stack retrieval = 99.9 s (Section VI-C)
    pkg_install_bw: float = 9.5 * MB
    #: removing one package during decomposition
    pkg_remove_s: float = 0.05
    #: cleaning cached repository files / build residue (B/s)
    cleanup_bw: float = 200 * MB

    # -- semantic layer ---------------------------------------------------
    #: similarity computation against one master graph (paper: < 100 ms)
    similarity_s: float = 0.08
    #: creating/updating graph metadata in SQLite
    metadata_update_s: float = 0.02

    # -- deletion / garbage collection ------------------------------------
    #: dropping one published-VMI record from the index (SQLite delete
    #: of the record plus its package join rows)
    vmi_delete_s: float = 0.03
    #: unlinking one blob from the repository disk — metadata work only,
    #: the bytes are reclaimed, not moved
    blob_unlink_s: float = 0.01
    #: scanning one VMI record during a GC mark pass (index read plus
    #: liveness bookkeeping)
    gc_record_scan_s: float = 0.002
    #: re-deriving one member primary subgraph while rebuilding a
    #: master graph around its live members
    gc_rebuild_per_primary_s: float = 0.01

    # -- compression (Qcow2 + Gzip baseline) ------------------------------
    #: gzip compression throughput (B/s of uncompressed input)
    gzip_bw: float = 90 * MB

    def __post_init__(self) -> None:
        for name in (
            "repo_write_bw",
            "repo_read_bw",
            "deb_repack_bw",
            "pkg_install_bw",
            "gzip_bw",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class CostModel:
    """Duration calculators, all pure functions of :class:`CostParams`."""

    def __init__(self, params: CostParams | None = None) -> None:
        self.params = params or CostParams()

    # -- raw byte movement ------------------------------------------------

    def write_bytes(self, n: int) -> float:
        """Sequential write of ``n`` bytes to the repository."""
        return n / self.params.repo_write_bw

    def read_bytes(self, n: int) -> float:
        """Sequential read of ``n`` bytes from the repository."""
        return n / self.params.repo_read_bw

    def gzip_bytes(self, n: int) -> float:
        """Compressing ``n`` uncompressed bytes."""
        return n / self.params.gzip_bw

    # -- appliance lifecycle ----------------------------------------------

    def guestfs_launch(self) -> float:
        return self.params.guestfs_launch_s

    def vmi_reset(self) -> float:
        return self.params.vmi_reset_s

    def base_cache_clone(self, n_bytes: int) -> float:
        """Materialising a fresh VMI from a warm local base copy.

        Never costs more than the cold repository read it replaces — a
        COW clone is metadata work, bounded above by copying the bytes.
        """
        return min(self.params.base_clone_s, self.read_bytes(n_bytes))

    # -- file-granular stores ----------------------------------------------

    def hash_and_index_files(self, n_files: int, n_bytes: int) -> float:
        """Publish-side dedup: hash every file, look it up, index it."""
        return n_files * self.params.per_file_hash_s + self.read_bytes(
            n_bytes
        )

    def fs_store_read(
        self, n_files: int, n_bytes: int, n_small: int
    ) -> float:
        """Reading files back from a filesystem-backed store (Mirage).

        Small files pay the extra penalty the paper calls out: "it is
        inefficient in reading small files (below 1 MB)".
        """
        p = self.params
        per_file = (
            (n_files - n_small) * p.fs_file_read_s
            + n_small * p.fs_file_read_s * p.small_file_penalty
        )
        return per_file + self.read_bytes(n_bytes)

    def hybrid_store_read(
        self,
        n_large_files: int,
        large_bytes: int,
        n_small_files: int,
        small_bytes: int,
    ) -> float:
        """Reading from Hemera's hybrid store: DB for small, FS for large."""
        p = self.params
        return (
            n_large_files * p.fs_file_read_s
            + n_small_files * p.db_file_read_s
            + self.read_bytes(large_bytes + small_bytes)
        )

    # -- package operations --------------------------------------------------

    def export_package(self, pkg: Package) -> float:
        """Repack an installed package into a .deb and ship it to the repo.

        Dominated by the *installed* size (dpkg-repack reads the
        installed payload), plus writing the resulting archive.
        """
        p = self.params
        return (
            p.deb_repack_fixed_s
            + pkg.installed_size / p.deb_repack_bw
            + pkg.n_files * p.per_file_export_s
            + self.write_bytes(pkg.deb_size)
        )

    def import_package(self, pkg: Package) -> float:
        """Copy a .deb from the repo and install it on the guest."""
        p = self.params
        return (
            p.pkg_install_fixed_s
            + self.read_bytes(pkg.deb_size)
            + pkg.installed_size / p.pkg_install_bw
        )

    def remove_package(self, pkg: Package) -> float:
        """Purge one package from the guest during decomposition."""
        return self.params.pkg_remove_s + pkg.installed_size / (
            self.params.pkg_install_bw * 4
        )

    def cleanup_residue(self, n_bytes: int) -> float:
        """Delete cached repository files / build residue (Section V-3)."""
        return 0.5 + n_bytes / self.params.cleanup_bw

    # -- semantic layer --------------------------------------------------------

    def similarity_computation(self) -> float:
        return self.params.similarity_s

    def metadata_update(self) -> float:
        return self.params.metadata_update_s

    # -- deletion / garbage collection -----------------------------------------

    def delete_record(self) -> float:
        """Unpublish one VMI: drop its record and join rows."""
        return self.params.vmi_delete_s + self.params.metadata_update_s

    def unlink_blob(self) -> float:
        """Reclaim one stored blob (metadata-only unlink)."""
        return self.params.blob_unlink_s

    def gc_record_scan(self) -> float:
        """Mark-phase visit of one VMI record."""
        return self.params.gc_record_scan_s

    def master_rebuild(self, n_primaries: int) -> float:
        """Rebuild one master graph around ``n_primaries`` live members."""
        return (
            self.params.metadata_update_s
            + n_primaries * self.params.gc_rebuild_per_primary_s
        )
