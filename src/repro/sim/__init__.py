"""Deterministic performance simulation.

The paper reports wall-clock seconds measured on a quad-core machine
with an external SSD.  The reproduction charges the same operations
(byte movement, per-file metadata work, package repack/install, guestfs
appliance launches) against a :class:`~repro.sim.costmodel.CostModel`
with calibrated constants, accumulating simulated seconds on a
:class:`~repro.sim.clock.SimulatedClock`.  Absolute numbers are models,
not measurements; the *shape* of every figure reproduces because the
same asymptotic drivers are charged.
"""

from repro.sim.clock import SimulatedClock, TimeBreakdown
from repro.sim.costmodel import CostModel, CostParams

__all__ = ["SimulatedClock", "TimeBreakdown", "CostModel", "CostParams"]
