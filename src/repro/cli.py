"""Command-line interface: ``expelliarmus`` / ``python -m repro``.

Subcommands:

* ``experiments [ids...]`` — run the paper's tables/figures (default:
  all) and print measured-vs-paper rows;
* ``publish <names...>`` — publish corpus images into a repository
  and report per-image publish statistics;
* ``publish-many [names...]`` — batch-publish a corpus through the
  scale-out pipeline (dedup-aware ordering, aggregated accounting);
  ``--scale N`` publishes an N-VMI generated multi-family corpus;
  ``--parallel N`` runs family-affine shards on a thread pool with
  critical-path accounting;
* ``retrieve-many [names...]`` — batch-retrieve published VMIs through
  the plan-caching pipeline (base-affine ordering, per-component
  accounting); ``--cold`` serves each request through the sequential
  cache-less assembler for comparison; ``--parallel N`` serves
  base-affine shards concurrently under the shared read lock;
* ``delete`` — batch-delete VMIs through the maintenance pipeline
  (``--gc-threshold-gb`` interleaves incremental GC passes scheduled
  by the reclaimable-bytes estimate);
* ``gc`` — run one garbage-collection pass (incremental by default,
  ``--full`` for the stop-the-world verification mode), reporting
  reclaimed bytes and the pass's work;
* ``fsck`` — run every repository consistency check and exit non-zero
  on findings — the integrity gate CI and operators script against;
* ``snapshot`` — checkpoint a workspace (snapshot + op-log truncate);
* ``compact`` — garbage-collect a workspace, then checkpoint it;
* ``corpus`` — list the evaluation images and their characteristics;
* ``stats`` — attribute repository storage.

**Workspaces.**  ``--workspace PATH`` (global, or after any repository
subcommand) makes the command operate on one *durable* store instead
of a throwaway in-process repository: the first command initialises
the directory, every state-changing operation is journaled to its
write-ahead op-log before it applies, and later invocations — other
processes included — reopen the same repository via snapshot + replay.
``publish`` into a workspace in one process, ``retrieve-many`` /
``gc`` / ``fsck`` it in the next.  Without ``--workspace``, the
repository-facing subcommands synthesize a corpus in memory and exit,
exactly as before; with it, corpus synthesis happens only for the
publishing subcommands (``retrieve-many``, ``delete``, ``gc``,
``fsck`` and ``stats`` operate on what the workspace already holds,
and their corpus/churn flags are ignored).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.runner import ALL_EXPERIMENTS
from repro.units import GB, fmt_gb, fmt_seconds

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="expelliarmus",
        description=(
            "Semantics-aware VMI management (IPDPS 2019 reproduction)"
        ),
    )
    parser.add_argument(
        "--workspace",
        metavar="PATH",
        default=None,
        help=(
            "operate on a durable repository at PATH (snapshot + "
            "write-ahead op-log) instead of a throwaway in-memory one"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    #: the same flag after the subcommand; SUPPRESS keeps a value
    #: parsed at the top level from being clobbered by this default
    workspace_flags = argparse.ArgumentParser(add_help=False)
    workspace_flags.add_argument(
        "--workspace",
        metavar="PATH",
        default=argparse.SUPPRESS,
        help="durable repository directory (same as the global flag)",
    )

    #: checkpoint policy for the write-path subcommands
    checkpoint_flags = argparse.ArgumentParser(add_help=False)
    checkpoint_flags.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="OPS",
        default=None,
        help=(
            "with --workspace: write a snapshot checkpoint whenever "
            "the op-log exceeds OPS entries (bounds reopen replay "
            "cost; default: journal only)"
        ),
    )

    exp = sub.add_parser(
        "experiments", help="run the paper's tables and figures"
    )
    exp.add_argument(
        "ids",
        nargs="*",
        choices=[*ALL_EXPERIMENTS, []],
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    exp.add_argument(
        "--figures",
        action="store_true",
        help="also render ASCII charts for figure-style results",
    )

    pub = sub.add_parser(
        "publish",
        help="publish corpus images into a repository",
        parents=[workspace_flags, checkpoint_flags],
    )
    pub.add_argument("names", nargs="+", help="corpus image names")

    #: corpus-selection flags shared by the batch subcommands
    corpus_flags = argparse.ArgumentParser(add_help=False)
    corpus_flags.add_argument(
        "names",
        nargs="*",
        help="Table II image names (default: all 19; ignored with --scale)",
    )
    corpus_flags.add_argument(
        "--scale",
        type=int,
        metavar="N",
        help="use an N-VMI generated corpus across --families",
    )
    corpus_flags.add_argument(
        "--families",
        type=int,
        default=8,
        help="OS families of the generated corpus (with --scale)",
    )
    corpus_flags.add_argument(
        "--seed", default="scale", help="generator seed (with --scale)"
    )

    many = sub.add_parser(
        "publish-many",
        help="batch-publish a corpus through the scale-out pipeline",
        parents=[corpus_flags, workspace_flags, checkpoint_flags],
    )
    many.add_argument(
        "--order",
        choices=["dedup", "given"],
        default="dedup",
        help="batch ordering (default: dedup-aware)",
    )
    many.add_argument(
        "--scan",
        action="store_true",
        help="paper-literal full-scan base selection (no index)",
    )
    many.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help=(
            "publish through N family-affine shards on a thread pool "
            "(write-lock serialized; default: sequential pipeline)"
        ),
    )
    many.add_argument(
        "--progress",
        action="store_true",
        help="print one line per published image",
    )

    ret = sub.add_parser(
        "retrieve-many",
        help="batch-retrieve a published corpus with warm plan caches",
        parents=[corpus_flags, workspace_flags],
    )
    ret.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="R",
        help="retrieve every published VMI R times (default: 1)",
    )
    ret.add_argument(
        "--order",
        choices=["affine", "given"],
        default="affine",
        help="batch ordering (default: base-affine)",
    )
    ret.add_argument(
        "--cold",
        action="store_true",
        help="sequential cache-less retrieval (Algorithm 3 per request)",
    )
    ret.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retrieve through N base-affine shards on a thread pool "
            "(read-lock shared; default: sequential pipeline)"
        ),
    )
    ret.add_argument(
        "--progress",
        action="store_true",
        help="print one line per retrieved image",
    )

    delete = sub.add_parser(
        "delete",
        help="batch-delete published VMIs (a churn fraction, or "
        "named ones from a workspace)",
        parents=[corpus_flags, workspace_flags, checkpoint_flags],
    )
    delete.add_argument(
        "--churn",
        type=int,
        default=10,
        metavar="PCT",
        help="percent of published VMIs to delete (default: 10)",
    )
    delete.add_argument(
        "--gc-threshold-gb",
        type=float,
        metavar="GB",
        help=(
            "interleave incremental GC whenever reclaimable bytes "
            "cross this threshold (default: defer collection)"
        ),
    )
    delete.add_argument(
        "--progress",
        action="store_true",
        help="print one line per deleted image",
    )

    gc = sub.add_parser(
        "gc",
        help="run one GC pass (on a workspace, or a churned corpus)",
        parents=[corpus_flags, workspace_flags],
    )
    gc.add_argument(
        "--churn",
        type=int,
        default=10,
        metavar="PCT",
        help="percent of published VMIs to delete first (default: 10)",
    )
    gc.add_argument(
        "--full",
        action="store_true",
        help="stop-the-world verification pass instead of incremental",
    )

    fsck = sub.add_parser(
        "fsck",
        help="run repository consistency checks (non-zero on findings)",
        parents=[corpus_flags, workspace_flags],
    )
    fsck.add_argument(
        "--churn",
        type=int,
        default=0,
        metavar="PCT",
        help=(
            "percent of published VMIs to delete (and GC) before "
            "checking, to exercise the lifecycle (default: 0)"
        ),
    )

    sub.add_parser("corpus", help="list the evaluation corpus")

    stats = sub.add_parser(
        "stats",
        help="attribute repository storage (a workspace's, or a "
        "freshly published corpus)",
        parents=[workspace_flags],
    )
    stats.add_argument(
        "names", nargs="*", help="corpus images (default: all 19)"
    )

    sub.add_parser(
        "snapshot",
        help="checkpoint a workspace: write a snapshot, truncate "
        "the op-log",
        parents=[workspace_flags],
    )

    compact = sub.add_parser(
        "compact",
        help="garbage-collect a workspace, then checkpoint it",
        parents=[workspace_flags],
    )
    compact.add_argument(
        "--full",
        action="store_true",
        help="stop-the-world verification GC instead of incremental",
    )
    return parser


def _cmd_experiments(ids: Sequence[str], figures: bool = False) -> int:
    chosen = list(ids) or list(ALL_EXPERIMENTS)
    for key in chosen:
        result = ALL_EXPERIMENTS[key]()
        print(result.render())
        if figures and result.series:
            print()
            print(result.render_figure())
        print()
    return 0


def _make_system(args, **kwargs):
    """An Expelliarmus over the ``--workspace`` store, or a fresh one.

    Opening a workspace replays its write-ahead op-log on top of the
    last snapshot; a fresh directory comes up empty and durable.
    """
    from repro.core.system import Expelliarmus

    path = getattr(args, "workspace", None)
    if path is None:
        return Expelliarmus(**kwargs)
    return Expelliarmus.open(path, **kwargs)


def _finish(system, args) -> None:
    """Honour the checkpoint policy, then detach from the workspace."""
    if system.workspace is not None:
        system.checkpoint_if_due(getattr(args, "checkpoint_every", None))
        system.close()


def _cmd_publish(args) -> int:
    from repro.errors import ReproError
    from repro.workloads.generator import standard_corpus

    corpus = standard_corpus()
    system = _make_system(args)
    try:
        for name in args.names:
            try:
                report = system.publish(corpus.build(name))
            except ReproError as exc:
                print(f"error: {name}: {exc}", file=sys.stderr)
                return 1
            print(
                f"{name}: published in "
                f"{fmt_seconds(report.publish_time)}, "
                f"similarity {report.similarity:.2f}, "
                f"exported {len(report.exported_packages)} packages, "
                f"deduplicated {len(report.deduplicated_packages)}, "
                f"repository now {fmt_gb(system.repository_size)}"
            )
        return 0
    finally:
        _finish(system, args)


def _resolve_corpus(args):
    """The VMIs the shared corpus flags select, or an exit code.

    ``--scale N`` builds an N-VMI generated corpus; otherwise the named
    (default: all) Table II images.  Errors print to stderr and return
    ``2``, the bad-arguments exit code.
    """
    from repro.workloads.generator import scale_corpus, standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    if args.scale is not None:
        try:
            corpus = scale_corpus(
                args.scale, n_families=args.families, seed=args.seed
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return list(corpus.build_all())
    table_corpus = standard_corpus()
    names = args.names or list(TABLE_II_ORDER)
    unknown = [n for n in names if n not in TABLE_II_ORDER]
    if unknown:
        print(
            f"error: unknown corpus image(s): {', '.join(unknown)} "
            f"(see 'expelliarmus corpus')",
            file=sys.stderr,
        )
        return 2
    return [table_corpus.build(name) for name in names]


def _cmd_publish_many(args) -> int:
    if args.parallel is not None and args.parallel < 1:
        print("error: --parallel must be positive", file=sys.stderr)
        return 2
    vmis = _resolve_corpus(args)
    if isinstance(vmis, int):
        return vmis

    system = _make_system(args, indexed_selection=not args.scan)

    def echo_progress(done, total, item):
        status = (
            f"{item.report.publish_time:7.2f}s"
            if item.ok
            else f"FAILED ({item.error})"
        )
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    try:
        report = system.publish_many(
            vmis,
            order=args.order,
            progress=echo_progress if args.progress else None,
            parallelism=args.parallel,
        )
        print(report.render())
        return 1 if report.n_failed else 0
    finally:
        _finish(system, args)


def _cmd_retrieve_many(args) -> int:
    if args.repeat < 1:
        print("error: --repeat must be positive", file=sys.stderr)
        return 2
    if args.parallel is not None and args.parallel < 1:
        print("error: --parallel must be positive", file=sys.stderr)
        return 2
    if args.cold and args.parallel is not None:
        print(
            "error: --cold is the sequential cache-less reference; "
            "drop --parallel",
            file=sys.stderr,
        )
        return 2

    if getattr(args, "workspace", None) is not None:
        # retrieve what the workspace already holds — published by an
        # earlier invocation, possibly by another process
        system = _make_system(args)
        published = system.published_names()
        if args.names:
            unknown = [n for n in args.names if n not in published]
            if unknown:
                print(
                    f"error: not published in this workspace: "
                    f"{', '.join(unknown)}",
                    file=sys.stderr,
                )
                _finish(system, args)
                return 2
            targets = list(args.names)
        else:
            targets = published
        if not targets:
            print(
                "error: workspace holds no published VMIs",
                file=sys.stderr,
            )
            _finish(system, args)
            return 2
        print(
            f"workspace holds {len(published)} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); retrieving "
            f"{len(targets)} x{args.repeat}"
        )
        requests = [n for _ in range(args.repeat) for n in targets]
    else:
        vmis = _resolve_corpus(args)
        if isinstance(vmis, int):
            return vmis
        system = _make_system(args)
        published = system.publish_many(vmis)
        if published.n_failed:
            print(published.render(), file=sys.stderr)
            return 1
        print(
            f"published {published.n_published} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); retrieving "
            f"x{args.repeat}"
        )
        requests = [
            r.name
            for _ in range(args.repeat)
            for r in system.repo.vmi_records()
        ]

    try:
        return _run_retrieval(system, requests, args)
    finally:
        _finish(system, args)


def _run_retrieval(system, requests, args) -> int:
    """The shared retrieval body: cold sequential or warm batch."""
    if args.cold:
        from repro.errors import ReproError
        from repro.service.retrieval import components_line
        from repro.sim.clock import TimeBreakdown

        total = TimeBreakdown()
        failed = 0
        for done, name in enumerate(requests, start=1):
            try:
                report = system.retrieve(name)
            except ReproError as exc:
                failed += 1
                if args.progress:
                    print(
                        f"[{done:>4}/{len(requests)}] {name:<16} "
                        f"FAILED ({exc})"
                    )
                continue
            total = total.merged(report.breakdown)
            if args.progress:
                print(
                    f"[{done:>4}/{len(requests)}] {name:<16} "
                    f"{report.retrieval_time:7.2f}s"
                )
        print(
            f"retrieved {len(requests) - failed}/{len(requests)} VMIs "
            f"in {total.total:.1f} simulated s (cold, sequential)"
        )
        print(f"  components: {components_line(total)}")
        return 1 if failed else 0

    def echo_progress(done, total, item):
        status = (
            f"{item.report.retrieval_time:7.2f}s"
            f"{' warm' if item.warm_base else ''}"
            f"{' plan-hit' if item.plan_hit else ''}"
            if item.ok
            else f"FAILED ({item.error})"
        )
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    report = system.retrieve_many(
        requests,
        order=args.order,
        progress=echo_progress if args.progress else None,
        parallelism=args.parallel,
    )
    print(report.render())
    return 1 if report.n_failed else 0


def _published_system(args):
    """Publish the selected corpus into a fresh system.

    Returns ``(system, published names)`` or an exit code on failure.
    """
    from repro.core.system import Expelliarmus

    vmis = _resolve_corpus(args)
    if isinstance(vmis, int):
        return vmis
    system = Expelliarmus()
    published = system.publish_many(vmis)
    if published.n_failed:
        print(published.render(), file=sys.stderr)
        return 1
    return system, system.published_names()


def _churn_victims(names, pct: int, seed: str) -> list[str]:
    """A deterministic ``pct``-percent subset of published names."""
    from repro.ids import content_id

    if pct <= 0:
        return []
    quota = max(1, (len(names) * pct + 99) // 100)
    ranked = sorted(
        names, key=lambda n: content_id(f"{seed}/churn/{n}")
    )
    return sorted(ranked[:quota])


def _cmd_delete(args) -> int:
    if getattr(args, "workspace", None) is not None:
        system = _make_system(args)
        names = system.published_names()
        if args.names:
            # explicit victims; unknown names surface as per-item
            # failures through the pipeline's isolation
            victims = list(args.names)
        else:
            if not 0 < args.churn <= 100:
                print(
                    "error: --churn must be in (0, 100]",
                    file=sys.stderr,
                )
                _finish(system, args)
                return 2
            victims = _churn_victims(names, args.churn, args.seed)
        print(
            f"workspace holds {len(names)} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); deleting "
            f"{len(victims)}"
        )
    else:
        if not 0 < args.churn <= 100:
            print("error: --churn must be in (0, 100]", file=sys.stderr)
            return 2
        prepared = _published_system(args)
        if isinstance(prepared, int):
            return prepared
        system, names = prepared
        victims = _churn_victims(names, args.churn, args.seed)
        print(
            f"published {len(names)} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); deleting "
            f"{len(victims)}"
        )

    def echo_progress(done, total, item):
        status = "deleted" if item.ok else f"FAILED ({item.error})"
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    threshold = (
        int(args.gc_threshold_gb * 1e9)
        if args.gc_threshold_gb is not None
        else None
    )
    try:
        report = system.delete_many(
            victims,
            progress=echo_progress if args.progress else None,
            gc_threshold_bytes=threshold,
            checkpoint_every_ops=getattr(args, "checkpoint_every", None),
        )
        print(report.render())
        return 1 if report.n_failed else 0
    finally:
        _finish(system, args)


def _print_gc_report(report) -> None:
    print(
        f"gc ({report.mode}): reclaimed "
        f"{report.reclaimed_bytes / 1e9:.3f} GB — "
        f"{report.removed_packages} packages, "
        f"{report.removed_user_data} user data, "
        f"{report.removed_bases} bases"
    )
    print(
        f"  work: {report.graph_rebuilds} master graphs rebuilt, "
        f"{report.records_scanned} records scanned, "
        f"{report.gc_seconds:.2f} simulated s"
    )


def _cmd_gc(args) -> int:
    if getattr(args, "workspace", None) is not None:
        # collect the workspace's pending garbage — churned by earlier
        # delete invocations, possibly in other processes
        system = _make_system(args)
        try:
            reclaimable = system.repo.reclaimable_bytes()
            print(
                f"workspace holds "
                f"{len(system.published_names())} VMIs; "
                f"{reclaimable / 1e9:.3f} GB reclaimable"
            )
            _print_gc_report(system.garbage_collect(full=args.full))
            return 0
        finally:
            _finish(system, args)

    if not 0 < args.churn <= 100:
        print("error: --churn must be in (0, 100]", file=sys.stderr)
        return 2
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    victims = _churn_victims(names, args.churn, args.seed)
    deleted = system.delete_many(victims)
    if deleted.n_failed:
        print(deleted.render(), file=sys.stderr)
        return 1
    reclaimable = system.repo.reclaimable_bytes()
    print(
        f"published {len(names)} VMIs, deleted {len(victims)}; "
        f"{reclaimable / 1e9:.3f} GB reclaimable"
    )
    _print_gc_report(system.garbage_collect(full=args.full))
    return 0


def _cmd_fsck(args) -> int:
    if getattr(args, "workspace", None) is not None:
        # the cross-process integrity gate: check the store exactly as
        # the last invocation left it
        system = _make_system(args)
        try:
            return _print_fsck_report(system.fsck())
        finally:
            _finish(system, args)

    if not 0 <= args.churn <= 100:
        print("error: --churn must be in [0, 100]", file=sys.stderr)
        return 2
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    if args.churn:
        victims = _churn_victims(names, args.churn, args.seed)
        system.delete_many(victims)
        system.garbage_collect()
    return _print_fsck_report(system.fsck())


def _print_fsck_report(report) -> int:
    if report.clean:
        print(
            f"repository clean: {report.checked_blobs} blobs, "
            f"{report.checked_vmis} VMIs checked"
        )
        return 0
    print(
        f"{len(report.findings)} inconsistencies found:",
        file=sys.stderr,
    )
    for finding in report.findings:
        print(f"  {finding}", file=sys.stderr)
    return 1


def _cmd_corpus() -> int:
    from repro.workloads.generator import standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    corpus = standard_corpus()
    print(f"{'name':<15} {'primaries':>9} {'mounted':>9} {'files':>8}")
    for name in TABLE_II_ORDER:
        vmi = corpus.build(name)
        spec = corpus.spec(name)
        print(
            f"{name:<15} {len(spec.primaries):>9} "
            f"{vmi.mounted_size / GB:>8.3f}G {vmi.n_files:>8}"
        )
    return 0


def _cmd_stats(args) -> int:
    from repro.analysis.storage_report import storage_report
    from repro.workloads.generator import standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    system = _make_system(args)
    try:
        if getattr(args, "workspace", None) is None:
            corpus = standard_corpus()
            for name in args.names or TABLE_II_ORDER:
                system.publish(corpus.build(name))
        report = storage_report(system.repo)
        _print_stats(report)
        return 0
    finally:
        _finish(system, args)


def _print_stats(report) -> None:
    print(f"repository: {fmt_gb(report.total_bytes)} across "
          f"{report.n_vmis} published VMIs")
    print(f"  base images : {fmt_gb(report.base_bytes)}")
    print(f"  packages    : {fmt_gb(report.package_bytes)} "
          f"({len(report.packages)} stored, sharing factor "
          f"{report.sharing_factor:.2f})")
    print(f"  user data   : {fmt_gb(report.data_bytes)}")
    print("\nlargest stored packages:")
    for pkg in report.top_packages(8):
        print(f"  {pkg.name:<28} {pkg.deb_size / 1e6:8.1f} MB  "
              f"referenced by {pkg.ref_count} VMI(s)")
    print("\nmost shared packages:")
    for pkg in report.most_shared(8):
        print(f"  {pkg.name:<28} x{pkg.ref_count:<3} "
              f"amortized {pkg.amortized_size / 1e6:.1f} MB/VMI")


def _require_workspace(args) -> str | None:
    path = getattr(args, "workspace", None)
    if path is None:
        print(
            f"error: {args.command} requires --workspace",
            file=sys.stderr,
        )
    return path


def _cmd_snapshot(args) -> int:
    if _require_workspace(args) is None:
        return 2
    system = _make_system(args)
    try:
        ops = system.workspace.ops_since_checkpoint
        size = system.save()
        print(
            f"checkpoint written: {size / 1e6:.2f} MB snapshot, "
            f"{ops} journaled op(s) folded in; next reopen replays 0"
        )
        return 0
    finally:
        _finish(system, args)


def _cmd_compact(args) -> int:
    if _require_workspace(args) is None:
        return 2
    system = _make_system(args)
    try:
        _print_gc_report(system.garbage_collect(full=args.full))
        size = system.save()
        print(
            f"checkpoint written: {size / 1e6:.2f} MB snapshot, "
            f"op-log truncated"
        )
        return 0
    finally:
        _finish(system, args)


def main(argv: Sequence[str] | None = None) -> int:
    from repro.errors import WorkspaceError

    args = build_parser().parse_args(argv)
    dispatch = {
        "publish": _cmd_publish,
        "publish-many": _cmd_publish_many,
        "retrieve-many": _cmd_retrieve_many,
        "delete": _cmd_delete,
        "gc": _cmd_gc,
        "fsck": _cmd_fsck,
        "stats": _cmd_stats,
        "snapshot": _cmd_snapshot,
        "compact": _cmd_compact,
    }
    try:
        if args.command == "experiments":
            return _cmd_experiments(args.ids, figures=args.figures)
        if args.command == "corpus":
            return _cmd_corpus()
        if args.command in dispatch:
            return dispatch[args.command](args)
    except WorkspaceError as exc:
        # a broken or mismatched durable store is an operator error,
        # not a crash: report it the way fsck reports findings
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
