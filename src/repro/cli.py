"""Command-line interface: ``expelliarmus`` / ``python -m repro``.

Subcommands:

* ``experiments [ids...]`` — run the paper's tables/figures (default:
  all) and print measured-vs-paper rows;
* ``publish <names...>`` — publish corpus images into a fresh
  repository and report per-image publish statistics;
* ``publish-many [names...]`` — batch-publish a corpus through the
  scale-out pipeline (dedup-aware ordering, aggregated accounting);
  ``--scale N`` publishes an N-VMI generated multi-family corpus;
* ``retrieve-many [names...]`` — publish a corpus, then batch-retrieve
  every published VMI through the plan-caching pipeline (base-affine
  ordering, per-component accounting); ``--cold`` serves each request
  through the sequential cache-less assembler for comparison;
* ``delete`` — publish a corpus, then batch-delete a churn fraction
  through the maintenance pipeline (``--gc-threshold-gb`` interleaves
  incremental GC passes scheduled by the reclaimable-bytes estimate);
* ``gc`` — publish a corpus, churn it, and run one garbage-collection
  pass (incremental by default, ``--full`` for the stop-the-world
  verification mode), reporting reclaimed bytes and the pass's work;
* ``fsck`` — publish a corpus (optionally churn + GC it), run every
  repository consistency check, and exit non-zero on findings — the
  integrity gate CI and operators script against;
* ``corpus`` — list the evaluation images and their characteristics.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.runner import ALL_EXPERIMENTS
from repro.units import GB, fmt_gb, fmt_seconds

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="expelliarmus",
        description=(
            "Semantics-aware VMI management (IPDPS 2019 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "experiments", help="run the paper's tables and figures"
    )
    exp.add_argument(
        "ids",
        nargs="*",
        choices=[*ALL_EXPERIMENTS, []],
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    exp.add_argument(
        "--figures",
        action="store_true",
        help="also render ASCII charts for figure-style results",
    )

    pub = sub.add_parser(
        "publish", help="publish corpus images into a fresh repository"
    )
    pub.add_argument("names", nargs="+", help="corpus image names")

    #: corpus-selection flags shared by the batch subcommands
    corpus_flags = argparse.ArgumentParser(add_help=False)
    corpus_flags.add_argument(
        "names",
        nargs="*",
        help="Table II image names (default: all 19; ignored with --scale)",
    )
    corpus_flags.add_argument(
        "--scale",
        type=int,
        metavar="N",
        help="use an N-VMI generated corpus across --families",
    )
    corpus_flags.add_argument(
        "--families",
        type=int,
        default=8,
        help="OS families of the generated corpus (with --scale)",
    )
    corpus_flags.add_argument(
        "--seed", default="scale", help="generator seed (with --scale)"
    )

    many = sub.add_parser(
        "publish-many",
        help="batch-publish a corpus through the scale-out pipeline",
        parents=[corpus_flags],
    )
    many.add_argument(
        "--order",
        choices=["dedup", "given"],
        default="dedup",
        help="batch ordering (default: dedup-aware)",
    )
    many.add_argument(
        "--scan",
        action="store_true",
        help="paper-literal full-scan base selection (no index)",
    )
    many.add_argument(
        "--progress",
        action="store_true",
        help="print one line per published image",
    )

    ret = sub.add_parser(
        "retrieve-many",
        help="batch-retrieve a published corpus with warm plan caches",
        parents=[corpus_flags],
    )
    ret.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="R",
        help="retrieve every published VMI R times (default: 1)",
    )
    ret.add_argument(
        "--order",
        choices=["affine", "given"],
        default="affine",
        help="batch ordering (default: base-affine)",
    )
    ret.add_argument(
        "--cold",
        action="store_true",
        help="sequential cache-less retrieval (Algorithm 3 per request)",
    )
    ret.add_argument(
        "--progress",
        action="store_true",
        help="print one line per retrieved image",
    )

    delete = sub.add_parser(
        "delete",
        help="publish a corpus, then batch-delete a churn fraction",
        parents=[corpus_flags],
    )
    delete.add_argument(
        "--churn",
        type=int,
        default=10,
        metavar="PCT",
        help="percent of published VMIs to delete (default: 10)",
    )
    delete.add_argument(
        "--gc-threshold-gb",
        type=float,
        metavar="GB",
        help=(
            "interleave incremental GC whenever reclaimable bytes "
            "cross this threshold (default: defer collection)"
        ),
    )
    delete.add_argument(
        "--progress",
        action="store_true",
        help="print one line per deleted image",
    )

    gc = sub.add_parser(
        "gc",
        help="publish a corpus, churn it, run one GC pass",
        parents=[corpus_flags],
    )
    gc.add_argument(
        "--churn",
        type=int,
        default=10,
        metavar="PCT",
        help="percent of published VMIs to delete first (default: 10)",
    )
    gc.add_argument(
        "--full",
        action="store_true",
        help="stop-the-world verification pass instead of incremental",
    )

    fsck = sub.add_parser(
        "fsck",
        help="run repository consistency checks (non-zero on findings)",
        parents=[corpus_flags],
    )
    fsck.add_argument(
        "--churn",
        type=int,
        default=0,
        metavar="PCT",
        help=(
            "percent of published VMIs to delete (and GC) before "
            "checking, to exercise the lifecycle (default: 0)"
        ),
    )

    sub.add_parser("corpus", help="list the evaluation corpus")

    stats = sub.add_parser(
        "stats",
        help="publish corpus images, then attribute repository storage",
    )
    stats.add_argument(
        "names", nargs="*", help="corpus images (default: all 19)"
    )
    return parser


def _cmd_experiments(ids: Sequence[str], figures: bool = False) -> int:
    chosen = list(ids) or list(ALL_EXPERIMENTS)
    for key in chosen:
        result = ALL_EXPERIMENTS[key]()
        print(result.render())
        if figures and result.series:
            print()
            print(result.render_figure())
        print()
    return 0


def _cmd_publish(names: Sequence[str]) -> int:
    from repro.core.system import Expelliarmus
    from repro.workloads.generator import standard_corpus

    corpus = standard_corpus()
    system = Expelliarmus()
    for name in names:
        report = system.publish(corpus.build(name))
        print(
            f"{name}: published in {fmt_seconds(report.publish_time)}, "
            f"similarity {report.similarity:.2f}, "
            f"exported {len(report.exported_packages)} packages, "
            f"deduplicated {len(report.deduplicated_packages)}, "
            f"repository now {fmt_gb(system.repository_size)}"
        )
    return 0


def _resolve_corpus(args):
    """The VMIs the shared corpus flags select, or an exit code.

    ``--scale N`` builds an N-VMI generated corpus; otherwise the named
    (default: all) Table II images.  Errors print to stderr and return
    ``2``, the bad-arguments exit code.
    """
    from repro.workloads.generator import scale_corpus, standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    if args.scale is not None:
        try:
            corpus = scale_corpus(
                args.scale, n_families=args.families, seed=args.seed
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return list(corpus.build_all())
    table_corpus = standard_corpus()
    names = args.names or list(TABLE_II_ORDER)
    unknown = [n for n in names if n not in TABLE_II_ORDER]
    if unknown:
        print(
            f"error: unknown corpus image(s): {', '.join(unknown)} "
            f"(see 'expelliarmus corpus')",
            file=sys.stderr,
        )
        return 2
    return [table_corpus.build(name) for name in names]


def _cmd_publish_many(args) -> int:
    from repro.core.system import Expelliarmus

    vmis = _resolve_corpus(args)
    if isinstance(vmis, int):
        return vmis

    system = Expelliarmus(indexed_selection=not args.scan)

    def echo_progress(done, total, item):
        status = (
            f"{item.report.publish_time:7.2f}s"
            if item.ok
            else f"FAILED ({item.error})"
        )
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    report = system.publish_many(
        vmis,
        order=args.order,
        progress=echo_progress if args.progress else None,
    )
    print(report.render())
    return 1 if report.n_failed else 0


def _cmd_retrieve_many(args) -> int:
    from repro.core.system import Expelliarmus

    if args.repeat < 1:
        print("error: --repeat must be positive", file=sys.stderr)
        return 2
    vmis = _resolve_corpus(args)
    if isinstance(vmis, int):
        return vmis

    system = Expelliarmus()
    published = system.publish_many(vmis)
    if published.n_failed:
        print(published.render(), file=sys.stderr)
        return 1
    print(
        f"published {published.n_published} VMIs "
        f"({system.repository_size / 1e9:.3f} GB); retrieving "
        f"x{args.repeat}"
    )

    requests = [
        r.name for _ in range(args.repeat) for r in system.repo.vmi_records()
    ]

    if args.cold:
        from repro.errors import ReproError
        from repro.service.retrieval import components_line
        from repro.sim.clock import TimeBreakdown

        total = TimeBreakdown()
        failed = 0
        for done, name in enumerate(requests, start=1):
            try:
                report = system.retrieve(name)
            except ReproError as exc:
                failed += 1
                if args.progress:
                    print(
                        f"[{done:>4}/{len(requests)}] {name:<16} "
                        f"FAILED ({exc})"
                    )
                continue
            total = total.merged(report.breakdown)
            if args.progress:
                print(
                    f"[{done:>4}/{len(requests)}] {name:<16} "
                    f"{report.retrieval_time:7.2f}s"
                )
        print(
            f"retrieved {len(requests) - failed}/{len(requests)} VMIs "
            f"in {total.total:.1f} simulated s (cold, sequential)"
        )
        print(f"  components: {components_line(total)}")
        return 1 if failed else 0

    def echo_progress(done, total, item):
        status = (
            f"{item.report.retrieval_time:7.2f}s"
            f"{' warm' if item.warm_base else ''}"
            f"{' plan-hit' if item.plan_hit else ''}"
            if item.ok
            else f"FAILED ({item.error})"
        )
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    report = system.retrieve_many(
        requests,
        order=args.order,
        progress=echo_progress if args.progress else None,
    )
    print(report.render())
    return 1 if report.n_failed else 0


def _published_system(args):
    """Publish the selected corpus into a fresh system.

    Returns ``(system, published names)`` or an exit code on failure.
    """
    from repro.core.system import Expelliarmus

    vmis = _resolve_corpus(args)
    if isinstance(vmis, int):
        return vmis
    system = Expelliarmus()
    published = system.publish_many(vmis)
    if published.n_failed:
        print(published.render(), file=sys.stderr)
        return 1
    return system, system.published_names()


def _churn_victims(names, pct: int, seed: str) -> list[str]:
    """A deterministic ``pct``-percent subset of published names."""
    from repro.ids import content_id

    if pct <= 0:
        return []
    quota = max(1, (len(names) * pct + 99) // 100)
    ranked = sorted(
        names, key=lambda n: content_id(f"{seed}/churn/{n}")
    )
    return sorted(ranked[:quota])


def _cmd_delete(args) -> int:
    if not 0 < args.churn <= 100:
        print("error: --churn must be in (0, 100]", file=sys.stderr)
        return 2
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    victims = _churn_victims(names, args.churn, args.seed)
    print(
        f"published {len(names)} VMIs "
        f"({system.repository_size / 1e9:.3f} GB); deleting "
        f"{len(victims)}"
    )

    def echo_progress(done, total, item):
        status = "deleted" if item.ok else f"FAILED ({item.error})"
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    threshold = (
        int(args.gc_threshold_gb * 1e9)
        if args.gc_threshold_gb is not None
        else None
    )
    report = system.delete_many(
        victims,
        progress=echo_progress if args.progress else None,
        gc_threshold_bytes=threshold,
    )
    print(report.render())
    return 1 if report.n_failed else 0


def _cmd_gc(args) -> int:
    if not 0 < args.churn <= 100:
        print("error: --churn must be in (0, 100]", file=sys.stderr)
        return 2
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    victims = _churn_victims(names, args.churn, args.seed)
    deleted = system.delete_many(victims)
    if deleted.n_failed:
        print(deleted.render(), file=sys.stderr)
        return 1
    reclaimable = system.repo.reclaimable_bytes()
    print(
        f"published {len(names)} VMIs, deleted {len(victims)}; "
        f"{reclaimable / 1e9:.3f} GB reclaimable"
    )
    report = system.garbage_collect(full=args.full)
    print(
        f"gc ({report.mode}): reclaimed "
        f"{report.reclaimed_bytes / 1e9:.3f} GB — "
        f"{report.removed_packages} packages, "
        f"{report.removed_user_data} user data, "
        f"{report.removed_bases} bases"
    )
    print(
        f"  work: {report.graph_rebuilds} master graphs rebuilt, "
        f"{report.records_scanned} records scanned, "
        f"{report.gc_seconds:.2f} simulated s"
    )
    return 0


def _cmd_fsck(args) -> int:
    if not 0 <= args.churn <= 100:
        print("error: --churn must be in [0, 100]", file=sys.stderr)
        return 2
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    if args.churn:
        victims = _churn_victims(names, args.churn, args.seed)
        system.delete_many(victims)
        system.garbage_collect()
    report = system.fsck()
    if report.clean:
        print(
            f"repository clean: {report.checked_blobs} blobs, "
            f"{report.checked_vmis} VMIs checked"
        )
        return 0
    print(
        f"{len(report.findings)} inconsistencies found:",
        file=sys.stderr,
    )
    for finding in report.findings:
        print(f"  {finding}", file=sys.stderr)
    return 1


def _cmd_corpus() -> int:
    from repro.workloads.generator import standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    corpus = standard_corpus()
    print(f"{'name':<15} {'primaries':>9} {'mounted':>9} {'files':>8}")
    for name in TABLE_II_ORDER:
        vmi = corpus.build(name)
        spec = corpus.spec(name)
        print(
            f"{name:<15} {len(spec.primaries):>9} "
            f"{vmi.mounted_size / GB:>8.3f}G {vmi.n_files:>8}"
        )
    return 0


def _cmd_stats(names: Sequence[str]) -> int:
    from repro.analysis.storage_report import storage_report
    from repro.core.system import Expelliarmus
    from repro.workloads.generator import standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    corpus = standard_corpus()
    system = Expelliarmus()
    for name in names or TABLE_II_ORDER:
        system.publish(corpus.build(name))
    report = storage_report(system.repo)

    print(f"repository: {fmt_gb(report.total_bytes)} across "
          f"{report.n_vmis} published VMIs")
    print(f"  base images : {fmt_gb(report.base_bytes)}")
    print(f"  packages    : {fmt_gb(report.package_bytes)} "
          f"({len(report.packages)} stored, sharing factor "
          f"{report.sharing_factor:.2f})")
    print(f"  user data   : {fmt_gb(report.data_bytes)}")
    print("\nlargest stored packages:")
    for pkg in report.top_packages(8):
        print(f"  {pkg.name:<28} {pkg.deb_size / 1e6:8.1f} MB  "
              f"referenced by {pkg.ref_count} VMI(s)")
    print("\nmost shared packages:")
    for pkg in report.most_shared(8):
        print(f"  {pkg.name:<28} x{pkg.ref_count:<3} "
              f"amortized {pkg.amortized_size / 1e6:.1f} MB/VMI")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments(args.ids, figures=args.figures)
    if args.command == "publish":
        return _cmd_publish(args.names)
    if args.command == "publish-many":
        return _cmd_publish_many(args)
    if args.command == "retrieve-many":
        return _cmd_retrieve_many(args)
    if args.command == "delete":
        return _cmd_delete(args)
    if args.command == "gc":
        return _cmd_gc(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "corpus":
        return _cmd_corpus()
    if args.command == "stats":
        return _cmd_stats(args.names)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
