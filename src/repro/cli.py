"""Command-line interface: ``expelliarmus`` / ``python -m repro``.

Subcommands:

* ``experiments [ids...]`` — run the paper's tables/figures (default:
  all) and print measured-vs-paper rows;
* ``publish <names...>`` — publish corpus images into a repository
  and report per-image publish statistics;
* ``publish-many [names...]`` — batch-publish a corpus through the
  scale-out pipeline (dedup-aware ordering, aggregated accounting);
  ``--scale N`` publishes an N-VMI generated multi-family corpus;
  ``--parallel N`` runs family-affine shards on a thread pool with
  critical-path accounting;
* ``retrieve-many [names...]`` — batch-retrieve published VMIs through
  the plan-caching pipeline (base-affine ordering, per-component
  accounting); ``--cold`` serves each request through the sequential
  cache-less assembler for comparison; ``--parallel N`` serves
  base-affine shards concurrently under the shared read lock;
* ``delete`` — batch-delete VMIs through the maintenance pipeline
  (``--gc-threshold-gb`` interleaves incremental GC passes scheduled
  by the reclaimable-bytes estimate);
* ``gc`` — run one garbage-collection pass (incremental by default,
  ``--full`` for the stop-the-world verification mode), reporting
  reclaimed bytes and the pass's work;
* ``fsck`` — run every repository consistency check and exit non-zero
  on findings — the integrity gate CI and operators script against;
* ``snapshot`` — checkpoint a workspace (snapshot + op-log truncate);
* ``compact`` — garbage-collect a workspace, then checkpoint it;
* ``corpus`` — list the evaluation images and their characteristics;
* ``stats`` — attribute repository storage;
* ``serve`` — run the long-running multi-tenant image server over a
  workspace (or an in-memory store); drains gracefully on SIGTERM;
* ``shutdown`` — ask a remote server to drain and exit.

**Workspaces.**  ``--workspace PATH`` (global, or after any repository
subcommand) makes the command operate on one *durable* store instead
of a throwaway in-process repository: the first command initialises
the directory, every state-changing operation is journaled to its
write-ahead op-log before it applies, and later invocations — other
processes included — reopen the same repository via snapshot + replay.
``publish`` into a workspace in one process, ``retrieve-many`` /
``gc`` / ``fsck`` it in the next.  Without ``--workspace``, the
repository-facing subcommands synthesize a corpus in memory and exit,
exactly as before; with it, corpus synthesis happens only for the
publishing subcommands (``retrieve-many``, ``delete``, ``gc``,
``fsck`` and ``stats`` operate on what the workspace already holds,
and their corpus/churn flags are ignored).

**Remote mode.**  ``--remote HOST:PORT`` points a repository
subcommand at a running ``expelliarmus serve`` daemon instead of a
local store: the same publish / retrieve-many / delete / gc / fsck /
stats / snapshot verbs travel over the image-service protocol, inside
the namespace of ``--tenant`` (default ``default``).  VMIs are named
by corpus reference (the server builds them), admission rejections and
quota errors come back as machine-readable codes, and ``shutdown``
drains the daemon gracefully.  ``--remote`` excludes ``--workspace``
and the local-only execution flags (``--parallel``, ``--cold``,
``--scan``) — the server owns those decisions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.runner import ALL_EXPERIMENTS
from repro.units import GB, fmt_gb, fmt_seconds

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="expelliarmus",
        description=(
            "Semantics-aware VMI management (IPDPS 2019 reproduction)"
        ),
    )
    parser.add_argument(
        "--workspace",
        metavar="PATH",
        default=None,
        help=(
            "operate on a durable repository at PATH (snapshot + "
            "write-ahead op-log) instead of a throwaway in-memory one"
        ),
    )
    parser.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=None,
        help=(
            "run the subcommand against a running 'expelliarmus "
            "serve' daemon instead of a local store"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help=(
            "scale the store out to N federated shard repositories "
            "(with --workspace: PATH becomes the federation root "
            "holding shard-NN workspaces; a federation root reopens "
            "with its persisted shard count)"
        ),
    )
    parser.add_argument(
        "--tenant",
        metavar="NAME",
        default="default",
        help="tenant namespace for --remote requests (default: default)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    #: the same flag after the subcommand; SUPPRESS keeps a value
    #: parsed at the top level from being clobbered by this default
    workspace_flags = argparse.ArgumentParser(add_help=False)
    workspace_flags.add_argument(
        "--workspace",
        metavar="PATH",
        default=argparse.SUPPRESS,
        help="durable repository directory (same as the global flag)",
    )
    workspace_flags.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=argparse.SUPPRESS,
        help="shard-count for a federated store (same as the global flag)",
    )

    #: the remote-mode flags after the subcommand, same SUPPRESS trick
    remote_flags = argparse.ArgumentParser(add_help=False)
    remote_flags.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=argparse.SUPPRESS,
        help="image-server endpoint (same as the global flag)",
    )
    remote_flags.add_argument(
        "--tenant",
        metavar="NAME",
        default=argparse.SUPPRESS,
        help="tenant namespace (same as the global flag)",
    )

    #: checkpoint policy for the write-path subcommands
    checkpoint_flags = argparse.ArgumentParser(add_help=False)
    checkpoint_flags.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="OPS",
        default=None,
        help=(
            "with --workspace: write a snapshot checkpoint whenever "
            "the op-log exceeds OPS entries (bounds reopen replay "
            "cost; default: journal only)"
        ),
    )

    exp = sub.add_parser(
        "experiments", help="run the paper's tables and figures"
    )
    exp.add_argument(
        "ids",
        nargs="*",
        choices=[*ALL_EXPERIMENTS, []],
        help=f"subset to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    exp.add_argument(
        "--figures",
        action="store_true",
        help="also render ASCII charts for figure-style results",
    )

    pub = sub.add_parser(
        "publish",
        help="publish corpus images into a repository",
        parents=[workspace_flags, checkpoint_flags, remote_flags],
    )
    pub.add_argument("names", nargs="+", help="corpus image names")

    #: corpus-selection flags shared by the batch subcommands
    corpus_flags = argparse.ArgumentParser(add_help=False)
    corpus_flags.add_argument(
        "names",
        nargs="*",
        help="Table II image names (default: all 19; ignored with --scale)",
    )
    corpus_flags.add_argument(
        "--scale",
        type=int,
        metavar="N",
        help="use an N-VMI generated corpus across --families",
    )
    corpus_flags.add_argument(
        "--families",
        type=int,
        default=8,
        help="OS families of the generated corpus (with --scale)",
    )
    corpus_flags.add_argument(
        "--seed", default="scale", help="generator seed (with --scale)"
    )
    corpus_flags.add_argument(
        "--split-pct",
        type=int,
        default=0,
        metavar="PCT",
        help=(
            "with --scale: put PCT percent of builds on the "
            "generation-B base template, the rest on generation A "
            "(the two-generation regime base mining targets; "
            "implies a fat-free corpus)"
        ),
    )

    many = sub.add_parser(
        "publish-many",
        help="batch-publish a corpus through the scale-out pipeline",
        parents=[
            corpus_flags,
            workspace_flags,
            checkpoint_flags,
            remote_flags,
        ],
    )
    many.add_argument(
        "--order",
        choices=["dedup", "given"],
        default="dedup",
        help="batch ordering (default: dedup-aware)",
    )
    many.add_argument(
        "--scan",
        action="store_true",
        help="paper-literal full-scan base selection (no index)",
    )
    many.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help=(
            "publish through N family-affine shards on a thread pool "
            "(write-lock serialized; default: sequential pipeline)"
        ),
    )
    many.add_argument(
        "--progress",
        action="store_true",
        help="print one line per published image",
    )

    ret = sub.add_parser(
        "retrieve-many",
        help="batch-retrieve a published corpus with warm plan caches",
        parents=[corpus_flags, workspace_flags, remote_flags],
    )
    ret.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="R",
        help="retrieve every published VMI R times (default: 1)",
    )
    ret.add_argument(
        "--order",
        choices=["affine", "given"],
        default="affine",
        help="batch ordering (default: base-affine)",
    )
    ret.add_argument(
        "--cold",
        action="store_true",
        help="sequential cache-less retrieval (Algorithm 3 per request)",
    )
    ret.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retrieve through N base-affine shards on a thread pool "
            "(read-lock shared; default: sequential pipeline)"
        ),
    )
    ret.add_argument(
        "--progress",
        action="store_true",
        help="print one line per retrieved image",
    )

    delete = sub.add_parser(
        "delete",
        help="batch-delete published VMIs (a churn fraction, or "
        "named ones from a workspace)",
        parents=[
            corpus_flags,
            workspace_flags,
            checkpoint_flags,
            remote_flags,
        ],
    )
    delete.add_argument(
        "--churn",
        type=int,
        default=10,
        metavar="PCT",
        help="percent of published VMIs to delete (default: 10)",
    )
    delete.add_argument(
        "--gc-threshold-gb",
        type=float,
        metavar="GB",
        help=(
            "interleave incremental GC whenever reclaimable bytes "
            "cross this threshold (default: defer collection)"
        ),
    )
    delete.add_argument(
        "--progress",
        action="store_true",
        help="print one line per deleted image",
    )
    delete.add_argument(
        "--legacy",
        action="store_true",
        help=(
            "delete the split regime's version-pinned legacy builds "
            "(needs --scale and --split-pct) — the churn that leaves "
            "mergeable generation pairs for 'mine'"
        ),
    )

    gc = sub.add_parser(
        "gc",
        help="run one GC pass (on a workspace, or a churned corpus)",
        parents=[corpus_flags, workspace_flags, remote_flags],
    )
    gc.add_argument(
        "--churn",
        type=int,
        default=10,
        metavar="PCT",
        help="percent of published VMIs to delete first (default: 10)",
    )
    gc.add_argument(
        "--full",
        action="store_true",
        help="stop-the-world verification pass instead of incremental",
    )

    fsck = sub.add_parser(
        "fsck",
        help="run repository consistency checks (non-zero on findings)",
        parents=[corpus_flags, workspace_flags, remote_flags],
    )
    fsck.add_argument(
        "--churn",
        type=int,
        default=0,
        metavar="PCT",
        help=(
            "percent of published VMIs to delete (and GC) before "
            "checking, to exercise the lifecycle (default: 0)"
        ),
    )

    mine = sub.add_parser(
        "mine",
        help="propose mergeable base-image sets (read-only analysis)",
        parents=[corpus_flags, workspace_flags, remote_flags],
    )
    mine.add_argument(
        "--keep-legacy",
        action="store_true",
        help=(
            "fresh-corpus mode: keep the split regime's version-pinned "
            "legacy builds (default: delete them first, the churn that "
            "makes the generation pairs mergeable)"
        ),
    )

    rebase = sub.add_parser(
        "rebase",
        help=(
            "mine and apply base merges as a journaled, "
            "crash-recoverable maintenance operation"
        ),
        parents=[corpus_flags, workspace_flags, remote_flags],
    )
    rebase.add_argument(
        "--keep-legacy",
        action="store_true",
        help=(
            "fresh-corpus mode: keep the version-pinned legacy builds "
            "instead of deleting them before the re-base"
        ),
    )

    sub.add_parser("corpus", help="list the evaluation corpus")

    stats = sub.add_parser(
        "stats",
        help="attribute repository storage (a workspace's, or a "
        "freshly published corpus)",
        parents=[workspace_flags, remote_flags],
    )
    stats.add_argument(
        "names", nargs="*", help="corpus images (default: all 19)"
    )

    sub.add_parser(
        "snapshot",
        help="checkpoint a workspace: write a snapshot, truncate "
        "the op-log",
        parents=[workspace_flags, remote_flags],
    )

    compact = sub.add_parser(
        "compact",
        help="garbage-collect a workspace, then checkpoint it",
        parents=[workspace_flags],
    )
    compact.add_argument(
        "--full",
        action="store_true",
        help="stop-the-world verification GC instead of incremental",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant image server (drains on SIGTERM)",
        parents=[workspace_flags],
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default: 0 = ephemeral; see --port-file)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="request handler threads (default: 4)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        metavar="N",
        help=(
            "admitted requests beyond the executing ones before "
            "'overloaded' rejections start (default: 16)"
        ),
    )
    serve.add_argument(
        "--quota-gb",
        type=float,
        default=None,
        metavar="GB",
        help=(
            "per-tenant logical stored-bytes quota (default: "
            "unlimited)"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-tenant concurrent in-flight request ceiling "
            "(default: unlimited)"
        ),
    )
    serve.add_argument(
        "--checkpoint-idle",
        type=float,
        default=1.0,
        metavar="S",
        help=(
            "with --workspace: checkpoint after S quiet seconds "
            "(default: 1.0; negative disables)"
        ),
    )
    serve.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound HOST:PORT to PATH once listening",
    )

    sub.add_parser(
        "shutdown",
        help="drain a remote image server gracefully",
        parents=[remote_flags],
    )
    return parser


def _cmd_experiments(ids: Sequence[str], figures: bool = False) -> int:
    chosen = list(ids) or list(ALL_EXPERIMENTS)
    for key in chosen:
        result = ALL_EXPERIMENTS[key]()
        print(result.render())
        if figures and result.series:
            print()
            print(result.render_figure())
        print()
    return 0


def _make_system(args, **kwargs):
    """An Expelliarmus over the ``--workspace`` store, or a fresh one.

    Opening a workspace replays its write-ahead op-log on top of the
    last snapshot; a fresh directory comes up empty and durable.
    ``--shards N`` swaps in a
    :class:`~repro.repository.federation.FederatedRepository` (same
    facade surface); a workspace that is already a federation root is
    reopened as one even without the flag.
    """
    from pathlib import Path

    from repro.core.system import Expelliarmus

    path = getattr(args, "workspace", None)
    shards = getattr(args, "shards", None)
    if shards is None and path is not None:
        from repro.repository.federation import MANIFEST_NAME

        if (Path(path) / MANIFEST_NAME).exists():
            shards = 0  # sentinel: reopen with the persisted count
    if shards is not None:
        from repro.repository.federation import FederatedRepository

        shards = shards or None
        if path is None:
            return FederatedRepository(shards=shards, **kwargs)
        return FederatedRepository.open(path, shards=shards, **kwargs)
    if path is None:
        return Expelliarmus(**kwargs)
    return Expelliarmus.open(path, **kwargs)


def _finish(system, args) -> None:
    """Honour the checkpoint policy, then detach from the workspace."""
    if system.workspace is not None:
        system.checkpoint_if_due(getattr(args, "checkpoint_every", None))
        system.close()


def _cmd_publish(args) -> int:
    from repro.errors import ReproError
    from repro.workloads.generator import standard_corpus

    corpus = standard_corpus()
    system = _make_system(args)
    try:
        for name in args.names:
            try:
                report = system.publish(corpus.build(name))
            except ReproError as exc:
                print(f"error: {name}: {exc}", file=sys.stderr)
                return 1
            print(
                f"{name}: published in "
                f"{fmt_seconds(report.publish_time)}, "
                f"similarity {report.similarity:.2f}, "
                f"exported {len(report.exported_packages)} packages, "
                f"deduplicated {len(report.deduplicated_packages)}, "
                f"repository now {fmt_gb(system.repository_size)}"
            )
        return 0
    finally:
        _finish(system, args)


def _resolve_corpus(args):
    """The VMIs the shared corpus flags select, or an exit code.

    ``--scale N`` builds an N-VMI generated corpus; otherwise the named
    (default: all) Table II images.  Errors print to stderr and return
    ``2``, the bad-arguments exit code.
    """
    from repro.workloads.generator import scale_corpus, standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    if args.scale is not None:
        overrides = {}
        if getattr(args, "split_pct", 0):
            # the split regime needs the fat flavour off: a fat base
            # conflicts with neither generation and would absorb both
            overrides = {
                "split_base_pct": args.split_pct,
                "fat_base_pct": 0,
            }
        try:
            corpus = scale_corpus(
                args.scale,
                n_families=args.families,
                seed=args.seed,
                **overrides,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return list(corpus.build_all())
    table_corpus = standard_corpus()
    names = args.names or list(TABLE_II_ORDER)
    unknown = [n for n in names if n not in TABLE_II_ORDER]
    if unknown:
        print(
            f"error: unknown corpus image(s): {', '.join(unknown)} "
            f"(see 'expelliarmus corpus')",
            file=sys.stderr,
        )
        return 2
    return [table_corpus.build(name) for name in names]


def _cmd_publish_many(args) -> int:
    if args.parallel is not None and args.parallel < 1:
        print("error: --parallel must be positive", file=sys.stderr)
        return 2
    vmis = _resolve_corpus(args)
    if isinstance(vmis, int):
        return vmis

    system = _make_system(args, indexed_selection=not args.scan)

    def echo_progress(done, total, item):
        status = (
            f"{item.report.publish_time:7.2f}s"
            if item.ok
            else f"FAILED ({item.error})"
        )
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    try:
        report = system.publish_many(
            vmis,
            order=args.order,
            progress=echo_progress if args.progress else None,
            parallelism=args.parallel,
        )
        print(report.render())
        return 1 if report.n_failed else 0
    finally:
        _finish(system, args)


def _cmd_retrieve_many(args) -> int:
    if args.repeat < 1:
        print("error: --repeat must be positive", file=sys.stderr)
        return 2
    if args.parallel is not None and args.parallel < 1:
        print("error: --parallel must be positive", file=sys.stderr)
        return 2
    if args.cold and args.parallel is not None:
        print(
            "error: --cold is the sequential cache-less reference; "
            "drop --parallel",
            file=sys.stderr,
        )
        return 2

    if getattr(args, "workspace", None) is not None:
        # retrieve what the workspace already holds — published by an
        # earlier invocation, possibly by another process
        system = _make_system(args)
        published = system.published_names()
        if args.names:
            unknown = [n for n in args.names if n not in published]
            if unknown:
                print(
                    f"error: not published in this workspace: "
                    f"{', '.join(unknown)}",
                    file=sys.stderr,
                )
                _finish(system, args)
                return 2
            targets = list(args.names)
        else:
            targets = published
        if not targets:
            print(
                "error: workspace holds no published VMIs",
                file=sys.stderr,
            )
            _finish(system, args)
            return 2
        print(
            f"workspace holds {len(published)} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); retrieving "
            f"{len(targets)} x{args.repeat}"
        )
        requests = [n for _ in range(args.repeat) for n in targets]
    else:
        vmis = _resolve_corpus(args)
        if isinstance(vmis, int):
            return vmis
        system = _make_system(args)
        published = system.publish_many(vmis)
        if published.n_failed:
            print(published.render(), file=sys.stderr)
            return 1
        print(
            f"published {published.n_published} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); retrieving "
            f"x{args.repeat}"
        )
        requests = [
            r.name
            for _ in range(args.repeat)
            for r in system.repo.vmi_records()
        ]

    try:
        return _run_retrieval(system, requests, args)
    finally:
        _finish(system, args)


def _run_retrieval(system, requests, args) -> int:
    """The shared retrieval body: cold sequential or warm batch."""
    if args.cold:
        from repro.errors import ReproError
        from repro.service.retrieval import components_line
        from repro.sim.clock import TimeBreakdown

        total = TimeBreakdown()
        failed = 0
        for done, name in enumerate(requests, start=1):
            try:
                report = system.retrieve(name)
            except ReproError as exc:
                failed += 1
                if args.progress:
                    print(
                        f"[{done:>4}/{len(requests)}] {name:<16} "
                        f"FAILED ({exc})"
                    )
                continue
            total = total.merged(report.breakdown)
            if args.progress:
                print(
                    f"[{done:>4}/{len(requests)}] {name:<16} "
                    f"{report.retrieval_time:7.2f}s"
                )
        print(
            f"retrieved {len(requests) - failed}/{len(requests)} VMIs "
            f"in {total.total:.1f} simulated s (cold, sequential)"
        )
        print(f"  components: {components_line(total)}")
        return 1 if failed else 0

    def echo_progress(done, total, item):
        status = (
            f"{item.report.retrieval_time:7.2f}s"
            f"{' warm' if item.warm_base else ''}"
            f"{' plan-hit' if item.plan_hit else ''}"
            if item.ok
            else f"FAILED ({item.error})"
        )
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    report = system.retrieve_many(
        requests,
        order=args.order,
        progress=echo_progress if args.progress else None,
        parallelism=args.parallel,
    )
    print(report.render())
    return 1 if report.n_failed else 0


def _published_system(args):
    """Publish the selected corpus into a fresh system.

    Returns ``(system, published names)`` or an exit code on failure.
    """
    from repro.core.system import Expelliarmus

    vmis = _resolve_corpus(args)
    if isinstance(vmis, int):
        return vmis
    system = Expelliarmus()
    published = system.publish_many(vmis)
    if published.n_failed:
        print(published.render(), file=sys.stderr)
        return 1
    return system, system.published_names()


def _churn_victims(names, pct: int, seed: str) -> list[str]:
    """A deterministic ``pct``-percent subset of published names."""
    from repro.ids import content_id

    if pct <= 0:
        return []
    quota = max(1, (len(names) * pct + 99) // 100)
    ranked = sorted(
        names, key=lambda n: content_id(f"{seed}/churn/{n}")
    )
    return sorted(ranked[:quota])


def _cmd_delete(args) -> int:
    if getattr(args, "workspace", None) is not None:
        system = _make_system(args)
        names = system.published_names()
        if args.legacy:
            victims = _legacy_victims(args)
            if isinstance(victims, int):
                _finish(system, args)
                return victims
        elif args.names:
            # explicit victims; unknown names surface as per-item
            # failures through the pipeline's isolation
            victims = list(args.names)
        else:
            if not 0 < args.churn <= 100:
                print(
                    "error: --churn must be in (0, 100]",
                    file=sys.stderr,
                )
                _finish(system, args)
                return 2
            victims = _churn_victims(names, args.churn, args.seed)
        print(
            f"workspace holds {len(names)} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); deleting "
            f"{len(victims)}"
        )
    else:
        if not 0 < args.churn <= 100:
            print("error: --churn must be in (0, 100]", file=sys.stderr)
            return 2
        prepared = _published_system(args)
        if isinstance(prepared, int):
            return prepared
        system, names = prepared
        if args.legacy:
            victims = _legacy_victims(args)
            if isinstance(victims, int):
                _finish(system, args)
                return victims
        else:
            victims = _churn_victims(names, args.churn, args.seed)
        print(
            f"published {len(names)} VMIs "
            f"({system.repository_size / 1e9:.3f} GB); deleting "
            f"{len(victims)}"
        )

    def echo_progress(done, total, item):
        status = "deleted" if item.ok else f"FAILED ({item.error})"
        print(f"[{done:>4}/{total}] {item.name:<16} {status}")

    threshold = (
        int(args.gc_threshold_gb * 1e9)
        if args.gc_threshold_gb is not None
        else None
    )
    try:
        report = system.delete_many(
            victims,
            progress=echo_progress if args.progress else None,
            gc_threshold_bytes=threshold,
            checkpoint_every_ops=getattr(args, "checkpoint_every", None),
        )
        print(report.render())
        return 1 if report.n_failed else 0
    finally:
        _finish(system, args)


def _print_gc_report(report) -> None:
    print(
        f"gc ({report.mode}): reclaimed "
        f"{report.reclaimed_bytes / 1e9:.3f} GB — "
        f"{report.removed_packages} packages, "
        f"{report.removed_user_data} user data, "
        f"{report.removed_bases} bases"
    )
    print(
        f"  work: {report.graph_rebuilds} master graphs rebuilt, "
        f"{report.records_scanned} records scanned, "
        f"{report.gc_seconds:.2f} simulated s"
    )


def _cmd_gc(args) -> int:
    if getattr(args, "workspace", None) is not None:
        # collect the workspace's pending garbage — churned by earlier
        # delete invocations, possibly in other processes
        system = _make_system(args)
        try:
            reclaimable = system.repo.reclaimable_bytes()
            print(
                f"workspace holds "
                f"{len(system.published_names())} VMIs; "
                f"{reclaimable / 1e9:.3f} GB reclaimable"
            )
            _print_gc_report(system.garbage_collect(full=args.full))
            return 0
        finally:
            _finish(system, args)

    if not 0 < args.churn <= 100:
        print("error: --churn must be in (0, 100]", file=sys.stderr)
        return 2
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    victims = _churn_victims(names, args.churn, args.seed)
    deleted = system.delete_many(victims)
    if deleted.n_failed:
        print(deleted.render(), file=sys.stderr)
        return 1
    reclaimable = system.repo.reclaimable_bytes()
    print(
        f"published {len(names)} VMIs, deleted {len(victims)}; "
        f"{reclaimable / 1e9:.3f} GB reclaimable"
    )
    _print_gc_report(system.garbage_collect(full=args.full))
    return 0


def _cmd_fsck(args) -> int:
    if getattr(args, "workspace", None) is not None:
        # the cross-process integrity gate: check the store exactly as
        # the last invocation left it
        system = _make_system(args)
        try:
            return _print_fsck_report(system.fsck())
        finally:
            _finish(system, args)

    if not 0 <= args.churn <= 100:
        print("error: --churn must be in [0, 100]", file=sys.stderr)
        return 2
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    if args.churn:
        victims = _churn_victims(names, args.churn, args.seed)
        system.delete_many(victims)
        system.garbage_collect()
    return _print_fsck_report(system.fsck())


def _print_fsck_report(report) -> int:
    if report.clean:
        print(
            f"repository clean: {report.checked_blobs} blobs, "
            f"{report.checked_vmis} VMIs checked"
        )
        return 0
    print(
        f"{len(report.findings)} inconsistencies found:",
        file=sys.stderr,
    )
    for finding in report.findings:
        print(f"  {finding}", file=sys.stderr)
    return 1


def _legacy_victims(args):
    """The split regime's version-pinned legacy builds, or exit 2."""
    from repro.workloads.generator import scale_corpus

    if args.scale is None or not getattr(args, "split_pct", 0):
        print(
            "error: --legacy selects the generated corpus's "
            "version-pinned builds; it needs --scale and --split-pct",
            file=sys.stderr,
        )
        return 2
    corpus = scale_corpus(
        args.scale,
        n_families=args.families,
        seed=args.seed,
        split_base_pct=args.split_pct,
        fat_base_pct=0,
    )
    return list(corpus.legacy_names())


def _maintenance_system(args):
    """The system mine/rebase operates on, or an exit code.

    Workspace mode opens the existing store exactly as earlier
    invocations left it.  Otherwise the selected corpus is published
    fresh and, in the split regime, its version-pinned legacy builds
    are deleted first — the churn that strands mergeable generation
    pairs for the miner to find.
    """
    if getattr(args, "workspace", None) is not None:
        return _make_system(args)
    prepared = _published_system(args)
    if isinstance(prepared, int):
        return prepared
    system, names = prepared
    if (
        args.scale is not None
        and getattr(args, "split_pct", 0)
        and not args.keep_legacy
    ):
        victims = _legacy_victims(args)
        assert not isinstance(victims, int)
        deleted = system.delete_many(victims)
        print(
            f"published {len(names)} VMIs, deleted "
            f"{deleted.n_deleted} legacy build(s)"
        )
    return system


def _cmd_mine(args) -> int:
    prepared = _maintenance_system(args)
    if isinstance(prepared, int):
        return prepared
    system = prepared
    try:
        print(system.mine_bases().render())
        return 0
    finally:
        _finish(system, args)


def _cmd_rebase(args) -> int:
    prepared = _maintenance_system(args)
    if isinstance(prepared, int):
        return prepared
    system = prepared
    try:
        print(system.rebase().render())
        return 0
    finally:
        _finish(system, args)


def _cmd_corpus() -> int:
    from repro.workloads.generator import standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    corpus = standard_corpus()
    print(f"{'name':<15} {'primaries':>9} {'mounted':>9} {'files':>8}")
    for name in TABLE_II_ORDER:
        vmi = corpus.build(name)
        spec = corpus.spec(name)
        print(
            f"{name:<15} {len(spec.primaries):>9} "
            f"{vmi.mounted_size / GB:>8.3f}G {vmi.n_files:>8}"
        )
    return 0


def _cmd_stats(args) -> int:
    from repro.analysis.storage_report import storage_report
    from repro.workloads.generator import standard_corpus
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    system = _make_system(args)
    try:
        if getattr(args, "workspace", None) is None:
            corpus = standard_corpus()
            for name in args.names or TABLE_II_ORDER:
                system.publish(corpus.build(name))
        from repro.repository.federation import FederatedRepository

        if isinstance(system, FederatedRepository):
            _print_federation_stats(system)
        else:
            report = storage_report(system.repo)
            _print_stats(report)
        return 0
    finally:
        _finish(system, args)


def _print_federation_stats(fed) -> None:
    print(
        f"federation: {fed.n_shards} shard(s), "
        f"{len(fed.published_names())} published VMIs, "
        f"{fmt_gb(fed.total_bytes())} logical "
        f"({fmt_gb(fed.physical_bytes())} across shard disks)"
    )
    for index, size in enumerate(fed.shard_bytes()):
        n_vmis = len(fed.systems[index].repo.vmi_records())
        print(
            f"  shard-{index:02d}: {fmt_gb(size)}, {n_vmis} VMI(s)"
        )
    print("\nbase-image index (family -> home shard):")
    for family, shard in sorted(fed.base_index.items()):
        print(f"  {family[0]}/{family[1]:<24} shard-{shard:02d}")


def _print_stats(report) -> None:
    print(f"repository: {fmt_gb(report.total_bytes)} across "
          f"{report.n_vmis} published VMIs")
    print(f"  base images : {fmt_gb(report.base_bytes)}")
    print(f"  packages    : {fmt_gb(report.package_bytes)} "
          f"({len(report.packages)} stored, sharing factor "
          f"{report.sharing_factor:.2f})")
    print(f"  user data   : {fmt_gb(report.data_bytes)}")
    print("\nlargest stored packages:")
    for pkg in report.top_packages(8):
        print(f"  {pkg.name:<28} {pkg.deb_size / 1e6:8.1f} MB  "
              f"referenced by {pkg.ref_count} VMI(s)")
    print("\nmost shared packages:")
    for pkg in report.most_shared(8):
        print(f"  {pkg.name:<28} x{pkg.ref_count:<3} "
              f"amortized {pkg.amortized_size / 1e6:.1f} MB/VMI")


def _is_federation_root(path) -> bool:
    from pathlib import Path

    from repro.repository.federation import MANIFEST_NAME

    return (Path(path) / MANIFEST_NAME).exists()


def _require_workspace(args) -> str | None:
    path = getattr(args, "workspace", None)
    if path is None:
        print(
            f"error: {args.command} requires --workspace",
            file=sys.stderr,
        )
    return path


def _cmd_snapshot(args) -> int:
    if _require_workspace(args) is None:
        return 2
    system = _make_system(args)
    try:
        ops = system.workspace.ops_since_checkpoint
        size = system.save()
        print(
            f"checkpoint written: {size / 1e6:.2f} MB snapshot, "
            f"{ops} journaled op(s) folded in; next reopen replays 0"
        )
        return 0
    finally:
        _finish(system, args)


def _cmd_compact(args) -> int:
    if _require_workspace(args) is None:
        return 2
    system = _make_system(args)
    try:
        _print_gc_report(system.garbage_collect(full=args.full))
        size = system.save()
        print(
            f"checkpoint written: {size / 1e6:.2f} MB snapshot, "
            f"op-log truncated"
        )
        return 0
    finally:
        _finish(system, args)


def _cmd_serve(args) -> int:
    """Run the image server until a drain (SIGTERM / remote shutdown).

    A second daemon pointed at the same workspace fails fast with the
    holder's pid on stderr (the workspace's advisory lock), exit 1 —
    never a traceback.
    """
    import signal

    from repro.service.server import ImageServer, ServerConfig
    from repro.service.tenancy import TenantQuota

    if args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    if args.queue_limit < 0:
        print(
            "error: --queue-limit must be non-negative",
            file=sys.stderr,
        )
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_quota=TenantQuota(
            max_bytes=(
                int(args.quota_gb * 1e9)
                if args.quota_gb is not None
                else None
            ),
            max_inflight=args.max_inflight,
        ),
        checkpoint_idle_s=(
            None
            if args.checkpoint_idle < 0
            else args.checkpoint_idle
        ),
    )
    path = getattr(args, "workspace", None)
    shards = getattr(args, "shards", None)
    if shards is not None or (
        path is not None and _is_federation_root(path)
    ):
        # the daemon fronts a federation: same protocol, N shards
        server = ImageServer(_make_system(args), config)
    elif path is not None:
        server = ImageServer.for_workspace(path, config)
    else:
        from repro.core.system import Expelliarmus

        server = ImageServer(Expelliarmus(), config)
    host, port = server.start()
    print(f"listening on {host}:{port}", flush=True)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as fh:
            fh.write(f"{host}:{port}\n")

    def _on_signal(signum, frame):
        server.request_shutdown()

    try:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    except ValueError:
        # not the main thread (in-process tests drive the lifecycle
        # through the protocol's shutdown op instead)
        pass
    server.wait()
    server.stop()
    print(
        f"drained: {server.requests_served} request(s) served",
        flush=True,
    )
    return 0


# ---------------------------------------------------------------------------
# remote mode: the same verbs against a running daemon
# ---------------------------------------------------------------------------


def _remote_source_items(args):
    """(source descriptor, item list) from the corpus flags, or ``2``.

    Remote publishes ship corpus *references*; the daemon builds the
    images (the corpora are pure functions of their configuration).
    """
    from repro.service.protocol import scale_source, table2_source
    from repro.workloads.vmi_specs import TABLE_II_ORDER

    if getattr(args, "scale", None) is not None:
        if args.scale < 1:
            print("error: --scale must be positive", file=sys.stderr)
            return 2
        return (
            scale_source(
                args.scale,
                n_families=args.families,
                seed=args.seed,
            ),
            list(range(args.scale)),
        )
    names = list(getattr(args, "names", None) or TABLE_II_ORDER)
    unknown = [n for n in names if n not in TABLE_II_ORDER]
    if unknown:
        print(
            f"error: unknown corpus image(s): {', '.join(unknown)} "
            f"(see 'expelliarmus corpus')",
            file=sys.stderr,
        )
        return 2
    return table2_source(), names


def _remote_publish(client, args) -> int:
    from repro.service.protocol import table2_source

    for name in args.names:
        result = client.publish(table2_source(), name)
        print(
            f"{name}: published as {result['name']} in "
            f"{fmt_seconds(result['simulated_seconds'])}, "
            f"similarity {result['similarity']:.2f}, "
            f"exported {result['exported_packages']} packages, "
            f"deduplicated {result['deduplicated_packages']}"
        )
    return 0


def _remote_publish_many(client, args) -> int:
    prepared = _remote_source_items(args)
    if isinstance(prepared, int):
        return prepared
    source, items = prepared
    result = client.publish_many(source, items)
    for row in result["results"]:
        if "error" in row:
            print(
                f"  {row['item']}: FAILED "
                f"({row['error']['code']}: "
                f"{row['error']['message']})",
                file=sys.stderr,
            )
        elif args.progress:
            print(
                f"  {row['item']}: {row['name']} "
                f"{row['simulated_seconds']:7.2f}s"
            )
    print(
        f"published {result['n_published']}/{result['n_items']} "
        f"VMIs in {result['simulated_seconds']:.1f} simulated s "
        f"(remote, tenant {client.tenant!r})"
    )
    return 1 if result["n_failed"] else 0


def _remote_retrieve_many(client, args) -> int:
    if args.repeat < 1:
        print("error: --repeat must be positive", file=sys.stderr)
        return 2
    names = list(args.names) if args.names else None
    retrieved = failed = 0
    simulated = 0.0
    for _ in range(args.repeat):
        result = client.retrieve_many(names)
        retrieved += result["n_retrieved"]
        failed += result["n_failed"]
        simulated += result["simulated_seconds"]
        for row in result["results"]:
            if "error" in row:
                print(
                    f"  {row['name']}: FAILED "
                    f"({row['error']['code']}: "
                    f"{row['error']['message']})",
                    file=sys.stderr,
                )
            elif args.progress:
                print(
                    f"  {row['name']}: "
                    f"{row['simulated_seconds']:7.2f}s "
                    f"digest {row['manifest_digest'][:12]}"
                )
    print(
        f"retrieved {retrieved}/{retrieved + failed} VMIs in "
        f"{simulated:.1f} simulated s (remote, tenant "
        f"{client.tenant!r})"
    )
    return 1 if failed else 0


def _remote_delete(client, args) -> int:
    if not args.names:
        print(
            "error: remote delete needs explicit image names "
            "(churn selection is a local-store feature)",
            file=sys.stderr,
        )
        return 2
    result = client.delete_many(list(args.names))
    for row in result["results"]:
        if "error" in row:
            print(
                f"  {row['name']}: FAILED "
                f"({row['error']['code']}: "
                f"{row['error']['message']})",
                file=sys.stderr,
            )
        elif args.progress:
            print(f"  {row['name']}: deleted")
    print(
        f"deleted {result['n_deleted']}/{result['n_items']} VMIs "
        f"(remote, tenant {client.tenant!r})"
    )
    return 1 if result["n_failed"] else 0


def _remote_gc(client, args) -> int:
    result = client.gc(full=args.full)
    print(
        f"gc ({result['mode']}): reclaimed "
        f"{result['reclaimed_bytes'] / 1e9:.3f} GB — "
        f"{result['removed_packages']} packages, "
        f"{result['removed_user_data']} user data, "
        f"{result['removed_bases']} bases"
    )
    print(
        f"  work: {result['graph_rebuilds']} master graphs rebuilt, "
        f"{result['records_scanned']} records scanned, "
        f"{result['simulated_seconds']:.2f} simulated s"
    )
    return 0


def _remote_fsck(client, args) -> int:
    result = client.fsck()
    if result["clean"]:
        print(
            f"repository clean: {result['checked_blobs']} blobs, "
            f"{result['checked_vmis']} VMIs checked"
        )
        return 0
    print(
        f"{len(result['findings'])} inconsistencies found:",
        file=sys.stderr,
    )
    for finding in result["findings"]:
        print(f"  {finding}", file=sys.stderr)
    return 1


def _remote_stats(client, args) -> int:
    result = client.stats()
    repo = result["repository"]
    print(
        f"repository: {fmt_gb(repo['total_bytes'])} across "
        f"{repo['n_vmis']} published VMIs"
    )
    for kind, n_bytes in sorted(repo["bytes_by_kind"].items()):
        print(f"  {kind:<12}: {fmt_gb(n_bytes)}")
    print("\ntenants:")
    for name, usage in sorted(result["tenants"].items()):
        limit = (
            fmt_gb(usage["max_bytes"])
            if usage["max_bytes"] is not None
            else "unlimited"
        )
        print(
            f"  {name:<16} {fmt_gb(usage['bytes_stored'])} of "
            f"{limit}, {usage['published']} image(s), "
            f"{usage['requests']} request(s), "
            f"{usage['quota_rejections'] + usage['busy_rejections']}"
            f" rejection(s)"
        )
    server = result["server"]
    print(
        f"\nserver: {server['admitted']} admitted, "
        f"{server['rejected']} rejected (overload), peak "
        f"{server['peak_active']}/{server['workers']}+"
        f"{server['queue_limit']} in flight, "
        f"{server['idle_checkpoints']} idle checkpoint(s)"
    )
    return 0


def _remote_snapshot(client, args) -> int:
    result = client.checkpoint()
    if not result["checkpointed"]:
        print(
            f"error: server did not checkpoint "
            f"({result['reason']})",
            file=sys.stderr,
        )
        return 1
    print(
        f"checkpoint written: "
        f"{result['snapshot_bytes'] / 1e6:.2f} MB snapshot, "
        f"{result['ops_folded']} journaled op(s) folded in"
    )
    return 0


def _remote_shutdown(client, args) -> int:
    client.shutdown()
    print(f"server at {client.host}:{client.port} is draining")
    return 0


_REMOTE_DISPATCH = {
    "publish": _remote_publish,
    "publish-many": _remote_publish_many,
    "retrieve-many": _remote_retrieve_many,
    "delete": _remote_delete,
    "gc": _remote_gc,
    "fsck": _remote_fsck,
    "stats": _remote_stats,
    "snapshot": _remote_snapshot,
    "shutdown": _remote_shutdown,
}


def _dispatch_remote(args) -> int:
    """Route one CLI invocation to a remote daemon.

    Typed service errors come back as machine-readable one-liners
    (``error [code]: message``) with exit 1; flag combinations that
    only make sense against a local store exit 2.
    """
    from repro.errors import ReproError
    from repro.service.client import RemoteClient

    if getattr(args, "workspace", None) is not None:
        print(
            "error: --remote and --workspace are exclusive (the "
            "daemon owns the store)",
            file=sys.stderr,
        )
        return 2
    for flag in ("parallel", "cold", "scan", "shards", "split_pct"):
        if getattr(args, flag, None):
            print(
                f"error: --{flag.replace('_', '-')} is a "
                "local-execution flag; the server decides its own "
                "execution strategy",
                file=sys.stderr,
            )
            return 2
    handler = _REMOTE_DISPATCH.get(args.command)
    if handler is None:
        print(
            f"error: {args.command!r} cannot run remotely",
            file=sys.stderr,
        )
        return 2
    try:
        client = RemoteClient.connect(args.remote, tenant=args.tenant)
    except (OSError, ReproError) as exc:
        print(
            f"error: cannot reach image server at {args.remote!r}: "
            f"{exc}",
            file=sys.stderr,
        )
        return 1
    try:
        with client:
            return handler(client, args)
    except ReproError as exc:
        code = getattr(exc, "code", None)
        label = f"error [{code}]" if code else "error"
        print(f"{label}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"error: connection to {args.remote} failed: {exc}",
            file=sys.stderr,
        )
        return 1


def main(argv: Sequence[str] | None = None) -> int:
    from repro.errors import WorkspaceError

    args = build_parser().parse_args(argv)
    shards = getattr(args, "shards", None)
    if shards is not None and shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 2
    dispatch = {
        "publish": _cmd_publish,
        "publish-many": _cmd_publish_many,
        "retrieve-many": _cmd_retrieve_many,
        "delete": _cmd_delete,
        "gc": _cmd_gc,
        "fsck": _cmd_fsck,
        "mine": _cmd_mine,
        "rebase": _cmd_rebase,
        "stats": _cmd_stats,
        "snapshot": _cmd_snapshot,
        "compact": _cmd_compact,
        "serve": _cmd_serve,
    }
    if getattr(args, "remote", None) is not None:
        return _dispatch_remote(args)
    if args.command == "shutdown":
        print(
            "error: shutdown requires --remote HOST:PORT",
            file=sys.stderr,
        )
        return 2
    try:
        if args.command == "experiments":
            return _cmd_experiments(args.ids, figures=args.figures)
        if args.command == "corpus":
            return _cmd_corpus()
        if args.command in dispatch:
            return dispatch[args.command](args)
    except WorkspaceError as exc:
        # a broken, mismatched or (for serve) already-locked durable
        # store is an operator error, not a crash: one line on stderr
        # — a WorkspaceLockedError's line names the holding pid
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
