"""Multi-tenant namespaces and quota accounting (DESIGN.md §13).

The server multiplexes many tenants onto one repository.  Isolation is
by *namespace prefix*: tenant ``acme`` publishing ``web-frontend``
stores the record under ``acme/web-frontend``, and every retrieval,
deletion and listing the server performs on the tenant's behalf is
prefixed the same way — a pure function of ``(tenant, name)``, which
is what lets the differential suite replay a multi-tenant workload
against a plain local library and demand identical repositories.
Deduplicated *content* (packages, bases, user data) is deliberately
shared across namespaces: tenants isolate what they can see, not what
the store is allowed to dedup — that sharing is the whole point of the
paper's scheme.

Quotas are *logical*: a publish charges the tenant the VMI's mounted
size (the bytes the tenant asked the service to hold), a deletion
credits the recorded mounted size back.  Charging physical
(deduplicated) bytes would make one tenant's bill depend on another
tenant's uploads — logical bytes are stable, predictable, and exactly
the Table II column operators reason in.

:class:`TenantRegistry` is the single synchronized home of per-tenant
state: quota configuration, stored-bytes accounting, the per-tenant
in-flight ceiling (one slow tenant cannot occupy every worker) and
rejection counters.  The registry is *open* by default — first use
registers a tenant with the default quota — or *closed*
(``strict=True``), where unknown names are refused with
:class:`~repro.errors.UnknownTenantError`, the calm-style
per-maintainer authorization model.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import (
    AdmissionRejectedError,
    ProtocolError,
    QuotaExceededError,
    UnknownTenantError,
)

__all__ = [
    "NAMESPACE_SEPARATOR",
    "TenantQuota",
    "TenantRegistry",
    "TenantUsage",
    "namespaced",
    "split_namespace",
    "validate_image_name",
    "validate_stored_name",
    "validate_tenant_name",
]

NAMESPACE_SEPARATOR = "/"

#: tenant names are path-safe identifiers; the separator is reserved
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_tenant_name(name: str) -> str:
    """Return the name, or raise for one that cannot be a namespace.

    Raises:
        ProtocolError: empty, too long, or containing the namespace
            separator / other unsafe characters.
    """
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise ProtocolError(
            f"invalid tenant name {name!r}: expected 1-64 chars of "
            "[A-Za-z0-9._-] starting alphanumeric"
        )
    return name


def validate_image_name(name: str) -> str:
    """Return the name, or raise for one unusable inside a namespace.

    Image names are the *tenant-visible* half of a stored name.  A
    separator inside one would make ``split_namespace`` ambiguous: a
    local publish of ``acme/web`` would later be misattributed to
    tenant ``acme`` by any daemon serving the same repository.  The
    service boundary (server ops, the federation router) therefore
    refuses separator-bearing names outright.

    Raises:
        ProtocolError: not a string, empty, or containing the
            namespace separator.
    """
    if not isinstance(name, str) or not name:
        raise ProtocolError(
            f"invalid image name {name!r}: expected a non-empty string"
        )
    if NAMESPACE_SEPARATOR in name:
        raise ProtocolError(
            f"invalid image name {name!r}: the namespace separator "
            f"{NAMESPACE_SEPARATOR!r} is reserved for tenant prefixes"
        )
    return name


def validate_stored_name(name: str) -> str:
    """Return a *stored* name, or raise for an unroutable one.

    A stored name is either a bare image name or exactly
    ``tenant/name`` — what :func:`namespaced` produces.  Anything with
    more separators (or an invalid tenant half) cannot round-trip
    through :func:`split_namespace` and is refused.  The federation
    router runs every published name through this check, so a sharded
    repository can never hold a name the service layer would
    misattribute.

    Raises:
        ProtocolError: empty, non-string, or an ambiguous namespace
            shape.
    """
    if not isinstance(name, str) or not name:
        raise ProtocolError(
            f"invalid stored name {name!r}: expected a non-empty string"
        )
    tenant, sep, rest = name.partition(NAMESPACE_SEPARATOR)
    if not sep:
        return validate_image_name(name)
    validate_tenant_name(tenant)
    validate_image_name(rest)
    return name


def namespaced(tenant: str, name: str) -> str:
    """The stored name of ``name`` inside ``tenant``'s namespace.

    Raises:
        ProtocolError: ``name`` itself carries the separator — the
            resulting stored name would not round-trip through
            :func:`split_namespace`.
    """
    validate_image_name(name)
    return f"{tenant}{NAMESPACE_SEPARATOR}{name}"


def split_namespace(stored_name: str) -> tuple[str | None, str]:
    """Invert :func:`namespaced`; ``(None, name)`` for global names."""
    tenant, sep, rest = stored_name.partition(NAMESPACE_SEPARATOR)
    if not sep:
        return None, stored_name
    return tenant, rest


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant ceilings; ``None`` disables a dimension."""

    #: logical (mounted) bytes the tenant may keep published
    max_bytes: int | None = None
    #: concurrent in-flight requests the tenant may hold
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")


@dataclass(frozen=True)
class TenantUsage:
    """Snapshot of one tenant's accounting (what ``stats`` reports)."""

    tenant: str
    bytes_stored: int
    published: int
    inflight: int
    requests: int
    quota_rejections: int
    busy_rejections: int
    quota: TenantQuota
    #: bytes a refund/credit tried to release beyond what the tenant
    #: held — every non-zero value is an accounting bug made visible
    drift_bytes: int = 0
    #: how many refunds hit the zero floor instead of balancing
    drift_events: int = 0


class _TenantState:
    """Mutable per-tenant counters; guarded by the registry lock."""

    __slots__ = (
        "quota",
        "bytes_stored",
        "published",
        "inflight",
        "requests",
        "quota_rejections",
        "busy_rejections",
        "drift_bytes",
        "drift_events",
        "owned",
    )

    def __init__(self, quota: TenantQuota) -> None:
        self.quota = quota
        self.bytes_stored = 0
        self.published = 0
        self.inflight = 0
        self.requests = 0
        self.quota_rejections = 0
        self.busy_rejections = 0
        self.drift_bytes = 0
        self.drift_events = 0
        #: stored names this tenant published through the service —
        #: the authorization set for retrieve/delete/listing
        self.owned: set[str] = set()


class TenantRegistry:
    """Synchronized per-tenant quota and usage accounting."""

    def __init__(
        self,
        *,
        default_quota: TenantQuota | None = None,
        tenants: dict[str, TenantQuota] | None = None,
        strict: bool = False,
    ) -> None:
        """``tenants`` pre-registers names with explicit quotas;
        ``strict=True`` closes the registry to exactly those names.

        Raises:
            ValueError: a closed registry with no registered tenants
                could never admit a request.
        """
        if strict and not tenants:
            raise ValueError(
                "strict registry needs at least one registered tenant"
            )
        self.default_quota = default_quota or TenantQuota()
        self.strict = strict
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        for name, quota in (tenants or {}).items():
            self._tenants[validate_tenant_name(name)] = _TenantState(
                quota
            )

    # reprolint: unguarded — caller-holds-the-lock helper (see
    # docstring); every call site is inside 'with self._lock'
    def _state(self, tenant: str) -> _TenantState:
        """Look up (or, when open, auto-register) a tenant.

        Caller holds the lock.

        Raises:
            UnknownTenantError: closed registry, unregistered name.
            ProtocolError: invalid tenant name.
        """
        state = self._tenants.get(tenant)
        if state is None:
            validate_tenant_name(tenant)
            if self.strict:
                raise UnknownTenantError(tenant)
            state = self._tenants[tenant] = _TenantState(
                self.default_quota
            )
        return state

    def known_tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    # ------------------------------------------------------------------
    # in-flight slots (per-tenant admission)
    # ------------------------------------------------------------------

    @contextmanager
    def slot(self, tenant: str):
        """Hold one of the tenant's in-flight slots for the block.

        Raises:
            AdmissionRejectedError: the tenant is already at its
                ``max_inflight`` ceiling (code ``tenant-busy``).
            UnknownTenantError / ProtocolError: bad tenant.
        """
        with self._lock:
            state = self._state(tenant)
            limit = state.quota.max_inflight
            if limit is not None and state.inflight >= limit:
                state.busy_rejections += 1
                raise AdmissionRejectedError(
                    "tenant-busy",
                    f"tenant {tenant!r} already has {state.inflight} "
                    f"request(s) in flight (limit {limit})",
                    tenant=tenant,
                )
            state.inflight += 1
            state.requests += 1
        try:
            yield
        finally:
            with self._lock:
                state.inflight -= 1

    # ------------------------------------------------------------------
    # stored-bytes quota
    # ------------------------------------------------------------------

    def charge_publish(self, tenant: str, n_bytes: int) -> None:
        """Reserve ``n_bytes`` of the tenant's logical quota.

        Raises:
            QuotaExceededError: the charge would pass ``max_bytes``.
        """
        with self._lock:
            state = self._state(tenant)
            limit = state.quota.max_bytes
            if (
                limit is not None
                and state.bytes_stored + n_bytes > limit
            ):
                state.quota_rejections += 1
                raise QuotaExceededError(
                    tenant,
                    requested_bytes=n_bytes,
                    used_bytes=state.bytes_stored,
                    limit_bytes=limit,
                )
            state.bytes_stored += n_bytes
            state.published += 1

    def refund_publish(self, tenant: str, n_bytes: int) -> None:
        """Undo a charge whose publish failed after reservation.

        The balance still floors at zero (a broken credit must not
        turn into negative billing), but any shortfall is *counted*:
        ``drift_bytes``/``drift_events`` in the tenant's usage expose
        double refunds and mismatched credits instead of silently
        zeroing them, and federation-level fsck flags the drift.
        """
        with self._lock:
            state = self._state(tenant)
            over = n_bytes - state.bytes_stored
            drifted = over > 0 or state.published == 0
            if drifted:
                state.drift_events += 1
                state.drift_bytes += max(over, 0)
            state.bytes_stored = max(0, state.bytes_stored - n_bytes)
            state.published = max(0, state.published - 1)

    def credit_delete(self, tenant: str, n_bytes: int) -> None:
        """Release quota held by a now-deleted image."""
        self.refund_publish(tenant, n_bytes)

    # ------------------------------------------------------------------
    # published-name ownership
    # ------------------------------------------------------------------

    def record_owned(self, tenant: str, stored_name: str) -> None:
        """Remember that ``tenant`` published ``stored_name``."""
        with self._lock:
            self._state(tenant).owned.add(stored_name)

    def forget_owned(self, tenant: str, stored_name: str) -> None:
        """Drop a deleted image from the tenant's ownership set."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None:
                state.owned.discard(stored_name)

    def owns(self, tenant: str, stored_name: str) -> bool:
        """Did ``tenant`` publish ``stored_name`` through the service?

        Read-only: an unknown tenant owns nothing and is *not*
        registered by asking.  This is the authorization check that
        keeps a pre-existing global name like ``acme/web`` (published
        locally, never through the service) invisible to tenant
        ``acme`` — prefix match alone would misattribute it.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            return state is not None and stored_name in state.owned

    def owned_names(self, tenant: str) -> list[str]:
        """Stored names the tenant published; empty for unknown names
        (read-only — never registers)."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return []
            return sorted(state.owned)

    def owners(self) -> dict[str, str]:
        """Every owned stored name → its tenant (the persistence dump
        the server journals beside its workspace)."""
        with self._lock:
            return {
                stored: tenant
                for tenant, state in sorted(self._tenants.items())
                for stored in sorted(state.owned)
            }

    # ------------------------------------------------------------------
    # reporting (read-only: never registers a tenant)
    # ------------------------------------------------------------------

    def usage(self, tenant: str) -> TenantUsage:
        """Snapshot one tenant's accounting.

        Raises:
            UnknownTenantError: the tenant has never touched the
                registry.  Reporting must not mutate: a ``stats``
                query for a typo'd name used to auto-register it
                permanently and pollute every later report.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                raise UnknownTenantError(tenant)
            return self._usage_locked(tenant, state)

    def _usage_locked(
        self, tenant: str, state: _TenantState
    ) -> TenantUsage:
        return TenantUsage(
            tenant=tenant,
            bytes_stored=state.bytes_stored,
            published=state.published,
            inflight=state.inflight,
            requests=state.requests,
            quota_rejections=state.quota_rejections,
            busy_rejections=state.busy_rejections,
            quota=state.quota,
            drift_bytes=state.drift_bytes,
            drift_events=state.drift_events,
        )

    def usages(self) -> dict[str, TenantUsage]:
        with self._lock:
            return {
                name: self._usage_locked(name, self._tenants[name])
                for name in sorted(self._tenants)
            }

    def total_drift(self) -> tuple[int, int]:
        """Registry-wide ``(drift_bytes, drift_events)`` totals."""
        with self._lock:
            return (
                sum(s.drift_bytes for s in self._tenants.values()),
                sum(s.drift_events for s in self._tenants.values()),
            )
