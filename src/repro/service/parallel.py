"""Parallel service execution: sharded batch pipelines (DESIGN.md §12).

The batch pipelines (:mod:`repro.service.batch`,
:mod:`repro.service.retrieval`) drive one repository strictly
sequentially.  This module runs the same work on a
:class:`~concurrent.futures.ThreadPoolExecutor`, sharded by
*base/family affinity*:

* **Sharding.**  :func:`plan_shards` groups a batch by an affinity key
  (the base-attribute quadruple for publishes, the stored base blob for
  retrievals) and packs whole groups onto the least-loaded shard.  Every
  item lands on exactly one shard, and items sharing a base never split
  across shards — so shards touch disjoint master graphs, warm-base
  copies and plan-cache keys, and rarely contend on anything but the
  repository lock itself.
* **Correctness.**  Each publish/delete runs under the repository's
  exclusive write lock (the whole operation, journal appends included),
  each retrieval under the shared read lock.  Parallel execution is
  therefore a *reordering* of the sequential schedule, and the
  differential suite (``tests/property/test_parallel_props.py``) pins
  down that the reordering is invisible: byte-identical retrieval
  manifests, identical refcounts and post-GC state, clean fsck.
* **Accounting.**  The simulated clock counts *work*; wall-clock
  overlap is modelled per shard.  Each shard's simulated seconds are
  the sum of its items' charged time, and the batch's
  ``critical_path_seconds`` is the *maximum* over shards — the
  simulated elapsed time of the overlapped schedule, against the
  summed ``simulated_seconds`` a sequential run would take.  Per-item
  breakdowns stay exact because the clock's measurement windows are
  thread-local.

:class:`ParallelPublishReport` / :class:`ParallelRetrieveReport` extend
the sequential batch reports with the per-shard accounts, so everything
the operator tooling already reads (totals, failures, dedup and planner
counters) keeps working unchanged.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence, TypeVar

from repro.core.assembly_plan import AssemblyPlanner, RetrievalRequest
from repro.core.publisher import VMIPublisher
from repro.errors import ReproError
from repro.model.vmi import VirtualMachineImage
from repro.service.batch import (
    BatchItemResult,
    BatchPublishReport,
    _dedup_key,
)
from repro.service.retrieval import (
    BatchRetrieveReport,
    RetrieveItemResult,
    _affine_key,
)

__all__ = [
    "ParallelPublisher",
    "ParallelPublishReport",
    "ParallelRetriever",
    "ParallelRetrieveReport",
    "ShardAccount",
    "plan_shards",
]

T = TypeVar("T")


# ---------------------------------------------------------------------------
# shard planning
# ---------------------------------------------------------------------------


def plan_shards(
    items: Sequence[T],
    n_shards: int,
    affinity: Callable[[T], Hashable],
) -> list[list[T]]:
    """Partition a batch into affinity-aligned, load-balanced shards.

    Items are grouped by ``affinity(item)`` (group-internal order
    preserved), then whole groups are packed largest-first onto the
    least-loaded shard.  Guarantees: every item is assigned to exactly
    one shard, and two items with equal affinity keys always share a
    shard.  Deterministic — ties break on the group's first appearance
    in the batch and the shard index — so a batch plans identically on
    every run even when affinity keys have unstable (``id()``-based)
    reprs.

    Shards may come back empty when the batch has fewer affinity
    groups than ``n_shards``.

    Raises:
        ValueError: non-positive ``n_shards``.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    groups: dict[Hashable, list[T]] = {}
    arrival: dict[Hashable, int] = {}
    for item in items:
        key = affinity(item)
        if key not in groups:
            groups[key] = []
            arrival[key] = len(arrival)
        groups[key].append(item)
    order = sorted(groups, key=lambda k: (-len(groups[k]), arrival[k]))
    shards: list[list[T]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for key in order:
        target = min(range(n_shards), key=lambda s: (loads[s], s))
        shards[target].extend(groups[key])
        loads[target] += len(groups[key])
    return shards


@dataclass(frozen=True)
class ShardAccount:
    """What one shard of a parallel batch did and charged."""

    shard: int
    n_items: int
    n_failed: int
    #: simulated seconds this shard's items charged (its sequential
    #: span inside the overlapped schedule)
    simulated_seconds: float


@dataclass(frozen=True)
class _OverlapAccounting:
    """Per-shard overlap accounting shared by both parallel reports.

    Mixed in ahead of a batch report (which supplies
    ``simulated_seconds`` — the summed work — and the base
    ``render``); ``results`` on the combined report are ordered by the
    caller's positions, since parallel execution order is
    scheduling-dependent and deliberately not exposed.
    """

    shards: tuple[ShardAccount, ...] = ()

    @property
    def parallelism(self) -> int:
        return len(self.shards)

    @property
    def critical_path_seconds(self) -> float:
        """Simulated elapsed time of the overlapped schedule (the
        slowest shard's span — what a wall clock would have seen)."""
        return max(
            (s.simulated_seconds for s in self.shards), default=0.0
        )

    @property
    def overlap_speedup(self) -> float:
        """Summed work over critical path: the modelled parallel gain."""
        critical = self.critical_path_seconds
        return self.simulated_seconds / critical if critical else 1.0

    def render(self) -> str:
        loads = ", ".join(
            f"s{s.shard}:{s.n_items}x/{s.simulated_seconds:.0f}s"
            for s in self.shards
        )
        return "\n".join(
            [
                super().render(),
                f"  parallel: {len(self.shards)} shard(s) [{loads}] — "
                f"critical path {self.critical_path_seconds:.1f}s of "
                f"{self.simulated_seconds:.1f}s total work "
                f"({self.overlap_speedup:.2f}x overlap)",
            ]
        )


# ---------------------------------------------------------------------------
# parallel publishing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelPublishReport(_OverlapAccounting, BatchPublishReport):
    """A batch-publish report plus its per-shard overlap accounting."""


class ParallelPublisher:
    """Drives one :class:`VMIPublisher` over family-affine shards.

    Every publish runs under the repository's exclusive write lock, so
    mutations never interleave *within* an operation; shards overlap
    their simulated I/O, which the per-shard accounts expose as
    critical-path time.  The publisher's selection memo is shared —
    its caches are internally locked.
    """

    def __init__(
        self, publisher: VMIPublisher, *, parallelism: int
    ) -> None:
        if parallelism < 1:
            raise ValueError(
                f"parallelism must be positive, got {parallelism}"
            )
        self.publisher = publisher
        self.parallelism = parallelism

    def publish_many(
        self,
        vmis: Sequence[VirtualMachineImage],
        *,
        order: str = "dedup",
        progress=None,
        on_error: str = "continue",
    ) -> ParallelPublishReport:
        """Publish a batch across shards; returns the merged report.

        Mirrors :meth:`~repro.service.batch.BatchPublisher.
        publish_many` (same ``order``/``progress``/``on_error``
        contract); ``order="dedup"`` applies the dedup-aware ordering
        *within* each shard — the affinity plan already keeps each
        quadruple family whole, so ordering across shards is
        irrelevant to dedup.

        Raises:
            ValueError: unknown ``order`` / ``on_error`` value.
            ReproError: a failing publish, when ``on_error="raise"``.
        """
        if order not in ("dedup", "given"):
            raise ValueError(f"unknown batch order {order!r}")
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")

        # items travel as (caller position, vmi) pairs, so duplicate
        # objects in one batch keep distinct result positions
        items = list(enumerate(vmis))
        shards = plan_shards(
            items, self.parallelism, lambda pv: pv[1].base.attrs.key()
        )
        if order == "dedup":
            # same key as dedup_aware_order; the stable sort keeps
            # equal-key uploads in their given (position) order
            shards = [
                sorted(shard, key=lambda pv: _dedup_key(pv[1]))
                for shard in shards
            ]

        repo = self.publisher.repo
        bytes_before = repo.total_bytes()
        stats_before = self.publisher.selection_memo.stats.snapshot()
        tracker = _ProgressTracker(progress, len(items))
        abort = threading.Event()

        def run_shard(shard_index: int, shard_items: list):
            results: list[BatchItemResult] = []
            simulated = 0.0
            failed = 0
            for pos, vmi in shard_items:
                if abort.is_set():
                    break
                try:
                    with repo.lock.write():
                        report = self.publisher.publish(vmi)
                except ReproError as exc:
                    if on_error == "raise":
                        abort.set()
                        raise
                    failed += 1
                    item = BatchItemResult(
                        position=pos,
                        name=vmi.name,
                        error=str(exc),
                    )
                else:
                    simulated += report.publish_time
                    item = BatchItemResult(
                        position=pos,
                        name=vmi.name,
                        report=report,
                    )
                results.append(item)
                tracker.step(item)
            return (
                results,
                ShardAccount(
                    shard=shard_index,
                    n_items=len(shard_items),
                    n_failed=failed,
                    simulated_seconds=simulated,
                ),
            )

        outcomes = _run_sharded(shards, run_shard, self.parallelism)

        results = sorted(
            (item for shard_results, _ in outcomes for item in shard_results),
            key=lambda item: item.position,
        )
        stats_after = self.publisher.selection_memo.stats
        return ParallelPublishReport(
            results=tuple(results),
            repo_bytes_before=bytes_before,
            repo_bytes_after=repo.total_bytes(),
            selection_stats=stats_after.since(stats_before),
            shards=tuple(account for _, account in outcomes),
        )


# ---------------------------------------------------------------------------
# parallel retrieval
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelRetrieveReport(_OverlapAccounting, BatchRetrieveReport):
    """A batch-retrieve report plus its per-shard overlap accounting."""


class ParallelRetriever:
    """Drives one (internally locked) :class:`AssemblyPlanner` over
    base-affine shards, each retrieval under the shared read lock."""

    def __init__(
        self, planner: AssemblyPlanner, *, parallelism: int
    ) -> None:
        if parallelism < 1:
            raise ValueError(
                f"parallelism must be positive, got {parallelism}"
            )
        self.planner = planner
        self.parallelism = parallelism

    def retrieve_many(
        self,
        requests: Sequence[RetrievalRequest | str],
        *,
        order: str = "affine",
        progress=None,
        on_error: str = "continue",
    ) -> ParallelRetrieveReport:
        """Retrieve a batch across shards; returns the merged report.

        Mirrors :meth:`~repro.service.retrieval.BatchRetriever.
        retrieve_many` (names or request objects; same ``order``/
        ``progress``/``on_error`` contract); ``order="affine"``
        applies the base-affine ordering within each shard, where all
        of a base's requests live anyway.

        Raises:
            ValueError: unknown ``order`` / ``on_error`` value.
            ReproError: a failing retrieval, when ``on_error="raise"``
                (including unresolvable names).
        """
        if order not in ("affine", "given"):
            raise ValueError(f"unknown batch order {order!r}")
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")

        repo = self.planner.repo
        tracker = _ProgressTracker(progress, len(requests))

        unresolved: list[RetrieveItemResult] = []
        resolved: list[tuple[int, RetrievalRequest]] = []
        for pos, item in enumerate(requests):
            if isinstance(item, RetrievalRequest):
                resolved.append((pos, item))
                continue
            try:
                with repo.lock.read():
                    record = repo.get_vmi_record(item)
            except ReproError as exc:
                if on_error == "raise":
                    raise
                failure = RetrieveItemResult(
                    position=pos, name=item, error=str(exc)
                )
                unresolved.append(failure)
                tracker.step(failure)
                continue
            resolved.append((pos, RetrievalRequest.for_record(record)))

        shards = plan_shards(
            resolved, self.parallelism, lambda pr: pr[1].base_key
        )
        if order == "affine":
            # same key as base_affine_order; the stable sort keeps
            # equal-key requests in their given (position) order
            shards = [
                sorted(shard, key=lambda pr: _affine_key(pr[1]))
                for shard in shards
            ]

        abort = threading.Event()

        def run_shard(shard_index: int, shard_items: list):
            results: list[RetrieveItemResult] = []
            simulated = 0.0
            failed = 0
            for pos, request in shard_items:
                if abort.is_set():
                    break
                try:
                    with repo.lock.read():
                        planned = self.planner.assemble(request)
                except ReproError as exc:
                    if on_error == "raise":
                        abort.set()
                        raise
                    failed += 1
                    item = RetrieveItemResult(
                        position=pos, name=request.name, error=str(exc)
                    )
                else:
                    simulated += planned.report.breakdown.total
                    item = RetrieveItemResult(
                        position=pos,
                        name=request.name,
                        report=planned.report,
                        plan_hit=planned.plan_hit,
                        warm_base=planned.warm_base,
                    )
                results.append(item)
                tracker.step(item)
            return (
                results,
                ShardAccount(
                    shard=shard_index,
                    n_items=len(shard_items),
                    n_failed=failed,
                    simulated_seconds=simulated,
                ),
            )

        stats_before = self.planner.stats.snapshot()
        outcomes = _run_sharded(shards, run_shard, self.parallelism)

        results = sorted(
            unresolved
            + [
                item
                for shard_results, _ in outcomes
                for item in shard_results
            ],
            key=lambda item: item.position,
        )
        return ParallelRetrieveReport(
            results=tuple(results),
            planner_stats=self.planner.stats.since(stats_before),
            shards=tuple(account for _, account in outcomes),
        )


# ---------------------------------------------------------------------------
# shared executor plumbing
# ---------------------------------------------------------------------------


class _ProgressTracker:
    """Serialises multi-threaded progress callbacks into done-counts."""

    def __init__(self, callback, total: int) -> None:
        self._callback = callback
        self._total = total
        self._done = 0
        self._lock = threading.Lock()

    def step(self, item) -> None:
        if self._callback is None:
            return
        with self._lock:
            self._done += 1
            self._callback(self._done, self._total, item)


def _run_sharded(shards, run_shard, parallelism: int):
    """Run every shard on the pool; re-raise the first shard error."""
    outcomes = []
    errors: list[BaseException] = []
    with ThreadPoolExecutor(max_workers=parallelism) as pool:
        futures = [
            pool.submit(run_shard, index, shard)
            for index, shard in enumerate(shards)
        ]
        for future in futures:
            try:
                outcomes.append(future.result())
            except ReproError as exc:
                errors.append(exc)
    if errors:
        raise errors[0]
    return outcomes
