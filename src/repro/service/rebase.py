"""Journaled re-base: publish mined bases, migrate VMIs onto them.

:class:`~repro.analysis.mining.BaseMiner` proposes merges; this module
*applies* them.  One applied candidate is a maintenance operation over
live metadata:

1. resolve (and, for synthetic candidates, store) the merged base;
2. build the merged master graph — the union base's master absorbs
   every donor master's primary subgraphs and memberships — and
   publish it *before* any record moves, so a record never points at a
   base whose master cannot explain its primaries;
3. per donor: repoint its records at the merged base, then rewrite
   every record's package contribution against the new base (packages
   the union bakes in stop being imports; refcounts move with them);
4. remove each drained donor base, dropping its master and telling the
   publisher's selection memo to forget the blob;
5. mark the merged base dirty so the next GC pass re-derives and tidies
   membership bookkeeping.

Crash safety follows the federation's ``rebalance.json`` pattern: on a
durable workspace the full candidate plan is written to a
``rebase.json`` intent file *before* the first mutation and unlinked
after the last.  Every step above is either an already-journaled
repository primitive or idempotent re-resolution, so recovery —
performed by the next :meth:`RebaseService.run` — simply re-executes
the plan: stores are no-ops when present, repoints of drained donors
move zero records, reassignments of correct contributions change
nothing, and removals skip missing donors.  The repository passes fsck
at *every* intermediate journal state (see
``tests/property/test_rebase_props.py`` for the exhaustive crash
matrix).

Retrieved bytes are invariant through all of this: the mining
condition guarantees each migrated VMI's manifest is preserved as a
file multiset, and the benchmark gate
(``benchmarks/bench_mining.py``) re-retrieves every migrated VMI and
compares digests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.analysis.mining import BaseMiner, MiningCandidate, MiningReport
from repro.errors import NotInRepositoryError
from repro.model.attributes import BaseImageAttrs
from repro.model.package import Package
from repro.model.vmi import BaseImage
from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository, base_image_qcow2
from repro.sim.clock import SimulatedClock
from repro.sim.costmodel import CostModel
from repro.similarity.compatibility import is_compatible

__all__ = ["INTENT_NAME", "RebaseReport", "RebaseService"]

#: re-base intent journal — present only while a re-base is in flight
INTENT_NAME = "rebase.json"


@dataclass(frozen=True)
class RebaseReport:
    """What one re-base pass changed."""

    #: mining candidates actually applied (stale ones are skipped)
    candidates_applied: int
    #: synthetic merged bases newly stored
    bases_published: int
    #: donor bases removed after draining
    bases_removed: int
    #: VMI records migrated onto a merged base
    migrated_vmis: int
    migrated_names: tuple[str, ...]
    #: physical stored bytes around the pass
    bytes_before: int
    bytes_after: int
    #: bytes one GC pass would additionally free (freed package blobs)
    reclaimable_after: int
    #: True when this run first completed a crashed predecessor's plan
    recovered: bool
    #: simulated seconds charged (mining included when run() mined)
    rebase_seconds: float

    @property
    def reclaimed_bytes(self) -> int:
        return self.bytes_before - self.bytes_after

    def render(self) -> str:
        return (
            f"rebase: {self.candidates_applied} candidate(s) applied"
            f"{' (recovered)' if self.recovered else ''} — "
            f"{self.migrated_vmis} VMI(s) migrated, "
            f"{self.bases_published} base(s) published, "
            f"{self.bases_removed} removed; "
            f"{self.reclaimed_bytes / 1e9:.3f} GB freed now, "
            f"{self.reclaimable_after / 1e9:.3f} GB more at next GC "
            f"({self.rebase_seconds:.2f} simulated s)"
        )


class RebaseService:
    """Apply mining candidates as a crash-recoverable maintenance op.

    ``workspace`` (when durable) hosts the intent journal;
    ``selection_memo`` is the publisher's Algorithm 2 cache, which must
    forget removed donor blobs; ``checkpoint_hook`` is a test seam
    called with a named checkpoint after every journal-visible step —
    fault injection raises there to simulate a crash.
    """

    def __init__(
        self,
        repo: Repository,
        clock: SimulatedClock | None = None,
        cost: CostModel | None = None,
        *,
        workspace=None,
        selection_memo=None,
        checkpoint_hook: Callable[[str], None] | None = None,
    ) -> None:
        self.repo = repo
        self.clock = clock or SimulatedClock()
        self.cost = cost or CostModel()
        self.workspace = workspace
        self.selection_memo = selection_memo
        self.checkpoint_hook = checkpoint_hook

    # -- public entry point ------------------------------------------------

    def run(self, mining: MiningReport | None = None) -> RebaseReport:
        """Recover any crashed plan, then mine (if needed) and apply.

        A leftover ``rebase.json`` is always completed first — its
        plan predates whatever ``mining`` proposes now.
        """
        bytes_before = self.repo.total_bytes()
        stats = _RunStats()
        with self.clock.measure() as breakdown:
            recovered = self._recover(stats)
            if mining is None:
                mining = BaseMiner(
                    self.repo, self.clock, self.cost
                ).mine()
            if mining.candidates:
                self._execute_plan(list(mining.candidates), stats)
        return RebaseReport(
            candidates_applied=stats.applied,
            bases_published=stats.published,
            bases_removed=stats.removed,
            migrated_vmis=len(stats.migrated),
            migrated_names=tuple(stats.migrated),
            bytes_before=bytes_before,
            bytes_after=self.repo.total_bytes(),
            reclaimable_after=self.repo.reclaimable_bytes(),
            recovered=recovered,
            rebase_seconds=breakdown.total,
        )

    # -- intent journal ----------------------------------------------------

    def _hook(self, checkpoint: str) -> None:
        if self.checkpoint_hook is not None:
            self.checkpoint_hook(checkpoint)

    def _intent_path(self):
        if self.workspace is None:
            return None
        return self.workspace.path / INTENT_NAME

    def _write_intent(self, plan: list[MiningCandidate]) -> None:
        intent = self._intent_path()
        if intent is None:
            return
        payload = {
            "version": 1,
            "candidates": [
                {
                    "attrs": [
                        c.attrs.os_type,
                        c.attrs.distro,
                        c.attrs.version,
                        c.attrs.arch,
                    ],
                    "winner": c.winner_key,
                    "merged": c.merged_key,
                    "packages": list(c.package_names),
                    "donors": list(c.donor_keys),
                    "reuses_winner": c.reuses_winner,
                }
                for c in plan
            ],
        }
        tmp = intent.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(intent)

    def _clear_intent(self) -> None:
        intent = self._intent_path()
        if intent is not None:
            intent.unlink(missing_ok=True)

    def _load_intent(self) -> list[MiningCandidate] | None:
        intent = self._intent_path()
        if intent is None or not intent.exists():
            return None
        data = json.loads(intent.read_text())
        return [
            MiningCandidate(
                attrs=BaseImageAttrs(*entry["attrs"]),
                winner_key=int(entry["winner"]),
                merged_key=int(entry["merged"]),
                package_names=tuple(entry["packages"]),
                donor_keys=tuple(
                    int(k) for k in entry["donors"]
                ),
                n_vmis=0,  # informational only; not needed to apply
                est_saved_bytes=0,
                reuses_winner=bool(entry["reuses_winner"]),
            )
            for entry in data["candidates"]
        ]

    def _recover(self, stats: "_RunStats") -> bool:
        plan = self._load_intent()
        if plan is None:
            return False
        self._execute_plan(plan, stats, rewrite_intent=False)
        return True

    # -- execution ---------------------------------------------------------

    def _execute_plan(
        self,
        plan: list[MiningCandidate],
        stats: "_RunStats",
        rewrite_intent: bool = True,
    ) -> None:
        if rewrite_intent:
            self._write_intent(plan)
            self._hook("intent-written")
        with self.repo.metadata_batch():
            for candidate in plan:
                self._apply(candidate, stats)
                self._hook("candidate-done")
        self._clear_intent()
        self._hook("intent-cleared")

    def _apply(
        self, candidate: MiningCandidate, stats: "_RunStats"
    ) -> None:
        new_base = self._resolve_base(candidate)
        if new_base is None:
            return  # stale candidate: its world changed under it
        new_key = new_base.blob_key()
        if self.repo.store_base_image(new_base):
            stats.published += 1
            self._charge(
                self.cost.write_bytes(base_image_qcow2(new_base).size)
            )
        self._hook("base-stored")

        merged = self._merged_master(candidate, new_base)
        self.repo.put_master_graph(merged)
        self._charge(
            self.cost.master_rebuild(len(merged.primary_packages()))
        )
        self._hook("master-merged")

        for donor_key in candidate.donor_keys:
            if donor_key == new_key:
                continue
            names = [
                r.name
                for r in self.repo.vmi_records_for_base(donor_key)
            ]
            moved = self.repo.repoint_vmis(donor_key, new_key)
            if moved:
                self._charge(self.cost.metadata_update() * moved)
                stats.migrated.extend(names)
            self._hook(f"repointed:{donor_key}")

        # every record now on the merged base gets an exact
        # contribution; pre-existing members re-derive to a no-op
        base_names = new_base.package_names()
        for record in self.repo.vmi_records_for_base(new_key):
            contribution: set[int] = set()
            for pname in record.primary_names:
                if not merged.has_package(pname):
                    continue
                subgraph = merged.extract_primary_subgraph(
                    pname, record.primary_version(pname)
                )
                contribution.update(
                    p.blob_key()
                    for p in subgraph.packages()
                    if p.name not in base_names
                    and self.repo.blobs.contains(p.blob_key())
                )
            if self.repo.reassign_vmi_packages(
                record.name, sorted(contribution)
            ):
                self._charge(self.cost.metadata_update())
            self._hook(f"reassigned:{record.name}")

        for donor_key in candidate.donor_keys:
            if donor_key == new_key:
                continue
            if (
                self._stored_base(donor_key) is not None
                and self.repo.base_refs(donor_key) == 0
            ):
                self.repo.remove_base_image(donor_key)
                self._charge(self.cost.unlink_blob())
                stats.removed += 1
                if self.selection_memo is not None:
                    self.selection_memo.forget_base(donor_key)
            self._hook(f"donor-removed:{donor_key}")

        self.repo.mark_base_dirty(new_key)
        stats.applied += 1

    def _stored_base(self, key: int) -> BaseImage | None:
        try:
            return self.repo.get_base_image(key)
        except NotInRepositoryError:
            return None

    def _resolve_base(
        self, candidate: MiningCandidate
    ) -> BaseImage | None:
        """The merged base to migrate onto, or None when stale.

        An already-stored union (the winner, or recovery after the
        store step) resolves by its content key.  Otherwise the union
        is rebuilt from the surviving donors' packages — always
        possible, because donors are only removed after the union is
        stored — and must hash to exactly the mined ``merged_key``.
        """
        stored = self._stored_base(candidate.merged_key)
        if stored is not None:
            return stored
        if candidate.reuses_winner:
            return None  # winner vanished: stale candidate
        by_name: dict[str, Package] = {}
        skeleton = None
        for key in (candidate.winner_key, *candidate.donor_keys):
            donor = self._stored_base(key)
            if donor is None:
                continue
            if skeleton is None:
                skeleton = donor.skeleton
            for pkg in donor.packages:
                by_name.setdefault(pkg.name, pkg)
        if skeleton is None or set(by_name) != set(
            candidate.package_names
        ):
            return None  # donors gone and union never stored: stale
        union = BaseImage(
            attrs=candidate.attrs,
            packages=tuple(
                sorted(by_name.values(), key=lambda p: p.name)
            ),
            skeleton=skeleton,
        )
        if union.blob_key() != candidate.merged_key:
            return None  # a donor changed identity under the plan
        return union

    def _merged_master(
        self, candidate: MiningCandidate, new_base: BaseImage
    ) -> MasterGraph:
        """The union base's master, absorbing every donor master.

        Absorption is selective, not a blanket ``merge_from``: master
        graphs never drop vertices, so a donor can still hold primary
        subgraphs of long-deleted members whose package identities
        conflict with the union base (the mining coverage condition
        only vouches for *live* records).  Those stale subgraphs serve
        no record and are skipped; every live member's subgraph passes
        the compatibility test by construction.
        """
        new_key = new_base.blob_key()
        if self.repo.has_master_graph(new_key):
            merged = self.repo.get_master_graph(new_key)
        else:
            merged = MasterGraph.for_base(new_base)
        for donor_key in candidate.donor_keys:
            if donor_key == new_key:
                continue
            if not self.repo.has_master_graph(donor_key):
                continue
            donor = self.repo.get_master_graph(donor_key)
            for pkg in donor.primary_packages():
                sub = donor.extract_primary_subgraph(
                    pkg.name, str(pkg.version)
                )
                if is_compatible(merged.base_subgraph, sub):
                    merged.add_primary_subgraph(sub)
            for name in donor.member_vmis:
                if name not in merged.member_vmis:
                    merged.member_vmis.append(name)
        return merged

    def _charge(self, seconds: float) -> None:
        self.clock.advance(seconds, "rebase")


class _RunStats:
    """Mutable counters one run() accumulates across recovery + plan."""

    def __init__(self) -> None:
        self.applied = 0
        self.published = 0
        self.removed = 0
        self.migrated: list[str] = []
