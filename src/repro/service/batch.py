"""Batch publishing: many VMIs, one pipeline, one report.

Publishing a corpus one :meth:`~repro.core.publisher.VMIPublisher.
publish` call at a time is correct but leaves two things on the table:

* **Order.**  The repository is content-addressed, so *storage* ends up
  identical whatever the order — but publish *time* and base-image
  churn do not.  Publishing a fat base before a lean one of the same
  quadruple stores the fat qcow2 only for Algorithm 2 to replace and
  delete it later; publishing the lean one first lets every following
  upload select the stored base outright.  :func:`dedup_aware_order`
  sorts a batch so that happens.
* **Accounting.**  Per-upload reports answer "what did this publish
  cost"; an operator ingesting a corpus needs the batch view — total
  simulated seconds, bytes added versus bytes uploaded, how much the
  package dedup saved, how hard Algorithm 2 had to work.
  :class:`BatchPublishReport` aggregates all of it, including the
  :class:`~repro.core.base_selection.SelectionStats` delta for the
  batch.

Failure isolation: a failing item (duplicate name, incompatible graph)
is recorded and the batch continues, unless ``on_error="raise"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.base_selection import SelectionStats
from repro.core.publisher import PublishReport, VMIPublisher
from repro.errors import ReproError
from repro.model.vmi import VirtualMachineImage

__all__ = [
    "BatchItemResult",
    "BatchPublisher",
    "BatchPublishReport",
    "dedup_aware_order",
]

#: progress callback: (items done, batch size, result of the last item)
ProgressFn = Callable[[int, int, "BatchItemResult"], None]


def dedup_aware_order(
    vmis: Iterable[VirtualMachineImage],
) -> list[VirtualMachineImage]:
    """Order a batch to maximise dedup and minimise base churn.

    Deterministic sort key, coarse to fine:

    1. base-attribute quadruple — uploads of one OS family arrive
       consecutively, so master graphs and the Algorithm 2 memo stay
       hot;
    2. base package count, ascending — lean bases are stored first and
       fat ones select them, instead of being stored and replaced;
    3. primary count, ascending — small uploads seed the package store
       so larger ones dedup against it at export time;
    4. name — a total order, so batches are reproducible.

    The sort is stable, so equal-key uploads keep their given order.
    """
    return sorted(vmis, key=_dedup_key)


def _dedup_key(vmi: VirtualMachineImage) -> tuple:
    return (
        vmi.base.attrs.key(),
        len(vmi.base.packages),
        len(vmi.primary_names()),
        vmi.name,
    )


@dataclass(frozen=True)
class BatchItemResult:
    """Outcome of one batch position: a report or a recorded failure."""

    position: int
    name: str
    report: PublishReport | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass(frozen=True)
class BatchPublishReport:
    """What one batch did, and what it cost in aggregate."""

    results: tuple[BatchItemResult, ...]
    repo_bytes_before: int
    repo_bytes_after: int
    #: SelectionStats delta attributable to this batch
    selection_stats: SelectionStats

    # -- outcomes -------------------------------------------------------

    @property
    def n_items(self) -> int:
        return len(self.results)

    @property
    def n_published(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def n_failed(self) -> int:
        return self.n_items - self.n_published

    def failures(self) -> list[BatchItemResult]:
        return [r for r in self.results if not r.ok]

    def reports(self) -> list[PublishReport]:
        return [r.report for r in self.results if r.report is not None]

    # -- aggregated cost ------------------------------------------------

    @property
    def simulated_seconds(self) -> float:
        """Total simulated publish duration across the batch."""
        return sum(r.publish_time for r in self.reports())

    @property
    def bytes_added(self) -> int:
        return self.repo_bytes_after - self.repo_bytes_before

    @property
    def exported_packages(self) -> int:
        return sum(len(r.exported_packages) for r in self.reports())

    @property
    def deduplicated_packages(self) -> int:
        return sum(len(r.deduplicated_packages) for r in self.reports())

    @property
    def new_bases(self) -> int:
        return sum(1 for r in self.reports() if r.stored_new_base)

    @property
    def replaced_bases(self) -> int:
        return sum(r.replaced_bases for r in self.reports())

    @property
    def dedup_ratio(self) -> float:
        """Fraction of required packages served from the repository."""
        total = self.exported_packages + self.deduplicated_packages
        return self.deduplicated_packages / total if total else 0.0

    @property
    def publish_rate(self) -> float:
        """Published VMIs per simulated second (batch throughput)."""
        seconds = self.simulated_seconds
        return self.n_published / seconds if seconds else 0.0

    def render(self) -> str:
        """A compact operator-facing summary of the batch."""
        stats = self.selection_stats
        lines = [
            f"published {self.n_published}/{self.n_items} VMIs in "
            f"{self.simulated_seconds:.1f} simulated s "
            f"({self.publish_rate:.2f} VMI/s)",
            f"  repository: +{self.bytes_added / 1e9:.3f} GB "
            f"(now {self.repo_bytes_after / 1e9:.3f} GB)",
            f"  packages: {self.exported_packages} exported, "
            f"{self.deduplicated_packages} deduplicated "
            f"({self.dedup_ratio:.0%} served from store)",
            f"  bases: {self.new_bases} stored, "
            f"{self.replaced_bases} replaced",
            f"  base selection: {stats.bases_considered} candidates "
            f"considered over {stats.calls} publishes, "
            f"{stats.compat_checks} compatibility checks "
            f"({stats.compat_cache_hits} memo hits)",
        ]
        for failure in self.failures():
            lines.append(f"  FAILED {failure.name}: {failure.error}")
        return "\n".join(lines)


class BatchPublisher:
    """Drives one :class:`VMIPublisher` over whole corpora."""

    def __init__(self, publisher: VMIPublisher) -> None:
        self.publisher = publisher

    def publish_many(
        self,
        vmis: Sequence[VirtualMachineImage],
        *,
        order: str = "dedup",
        progress: ProgressFn | None = None,
        on_error: str = "continue",
    ) -> BatchPublishReport:
        """Publish a batch; returns the aggregated report.

        ``order`` is ``"dedup"`` (default, :func:`dedup_aware_order`) or
        ``"given"`` (preserve the caller's sequence — Table II style
        workloads where arrival order is part of the experiment).
        ``on_error`` is ``"continue"`` (record the failure, keep going)
        or ``"raise"``.

        Raises:
            ValueError: unknown ``order`` / ``on_error`` value.
            ReproError: a failing publish, when ``on_error="raise"``.
        """
        if order not in ("dedup", "given"):
            raise ValueError(f"unknown batch order {order!r}")
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")
        batch = (
            dedup_aware_order(vmis) if order == "dedup" else list(vmis)
        )

        repo = self.publisher.repo
        bytes_before = repo.total_bytes()
        stats_before = self.publisher.selection_memo.stats.snapshot()

        results: list[BatchItemResult] = []
        # one SQLite commit for the whole pipeline instead of one per
        # inserted row; recovery durability lives in the op-log
        with repo.metadata_batch():
            for position, vmi in enumerate(batch):
                try:
                    report = self.publisher.publish(vmi)
                except ReproError as exc:
                    if on_error == "raise":
                        raise
                    item = BatchItemResult(
                        position=position, name=vmi.name, error=str(exc)
                    )
                else:
                    item = BatchItemResult(
                        position=position, name=vmi.name, report=report
                    )
                results.append(item)
                if progress is not None:
                    progress(len(results), len(batch), item)

        stats_after = self.publisher.selection_memo.stats
        return BatchPublishReport(
            results=tuple(results),
            repo_bytes_before=bytes_before,
            repo_bytes_after=repo.total_bytes(),
            selection_stats=stats_after.since(stats_before),
        )
