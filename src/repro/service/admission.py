"""Server admission control: a bounded queue with fast rejection.

A long-running daemon in front of one repository must protect itself:
under overload, queueing more work only grows latency without growing
throughput — the workers are the bottleneck either way.  The
:class:`AdmissionController` therefore bounds the number of requests
that may be *anywhere* inside the server (executing on a worker or
waiting for one) at ``max_active + max_queued``, and rejects the rest
immediately with a machine-readable 429-style error the client can
back off on — backpressure over buffering.

The controller is deliberately tiny (one counter under one mutex, no
allocation per request) and self-contained, so the rejection paths can
be unit-tested exhaustively without sockets or threads.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import AdmissionRejectedError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-occupancy admission with non-blocking rejection."""

    def __init__(self, max_active: int, max_queued: int) -> None:
        """``max_active`` mirrors the worker-pool size; ``max_queued``
        is the extra headroom requests may wait in.

        Raises:
            ValueError: non-positive worker count or negative queue.
        """
        if max_active < 1:
            raise ValueError(
                f"max_active must be positive, got {max_active}"
            )
        if max_queued < 0:
            raise ValueError(
                f"max_queued must be non-negative, got {max_queued}"
            )
        self.capacity = max_active + max_queued
        self._lock = threading.Lock()
        self._active = 0
        self._admitted = 0
        self._rejected = 0
        self._peak = 0

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    @property
    def active(self) -> int:
        """Requests currently admitted (queued or executing)."""
        return self._active

    @property
    def admitted(self) -> int:
        """Requests ever admitted."""
        return self._admitted

    @property
    def rejected(self) -> int:
        """Requests ever turned away at the door."""
        return self._rejected

    @property
    def peak_active(self) -> int:
        """High-water mark of concurrent occupancy."""
        return self._peak

    # ------------------------------------------------------------------
    # the door
    # ------------------------------------------------------------------

    @contextmanager
    def admit(self):
        """Hold one occupancy slot for the block; never blocks.

        Raises:
            AdmissionRejectedError: the server is at capacity (code
                ``overloaded``) — the caller should respond 429-style
                and let the client back off.
        """
        with self._lock:
            if self._active >= self.capacity:
                self._rejected += 1
                raise AdmissionRejectedError(
                    "overloaded",
                    f"server at capacity ({self._active} requests "
                    f"in flight, limit {self.capacity}) — back off "
                    "and retry",
                )
            self._active += 1
            self._admitted += 1
            self._peak = max(self._peak, self._active)
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AdmissionController active={self._active}/"
            f"{self.capacity} rejected={self._rejected}>"
        )
