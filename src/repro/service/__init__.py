"""Scale-out service layer: batch operations over one repository.

The paper's use case is interactive — one user uploads one VMI (Figure
2, steps 1-3).  Operating a repository at corpus scale (marketplace
imports, CI rebuild storms, tenant migrations) publishes hundreds to
thousands of images in one administrative action, and doing that well
is more than a loop: the batch should be *ordered* so the repository's
dedup machinery sees lean bases and shared packages early, *accounted*
so the operator learns what the batch cost as a whole, and *observable*
while it runs.

:mod:`repro.service.batch` provides exactly that pipeline:

* :func:`~repro.service.batch.dedup_aware_order` — deterministic batch
  ordering that groups uploads by base-attribute quadruple and puts
  leaner bases and smaller primary sets first, so Algorithm 2 selects
  stored bases instead of storing fat ones it must replace later;
* :class:`~repro.service.batch.BatchPublisher` — drives
  :class:`~repro.core.publisher.VMIPublisher` over a whole corpus with
  per-item error isolation and a progress callback;
* :class:`~repro.service.batch.BatchPublishReport` — aggregated cost
  accounting: simulated seconds, bytes, export/dedup counts, base
  replacement churn and the Algorithm 2 work counters for the batch.

:mod:`repro.service.retrieval` is the read-side mirror of the same
idea — the half a production repository actually serves under
read-heavy traffic:

* :func:`~repro.service.retrieval.base_affine_order` — deterministic
  batch ordering that runs requests sharing a stored base (and,
  within a base, a full assembly plan) consecutively, so the warm
  base copy and the cached plan serve every follower;
* :class:`~repro.service.retrieval.BatchRetriever` — drives
  :class:`~repro.core.assembly_plan.AssemblyPlanner` over a whole
  request batch with per-item error isolation and a progress callback;
* :class:`~repro.service.retrieval.BatchRetrieveReport` — aggregated
  cost accounting: the Figure-5a component stack for the batch plus
  the planner's plan-cache and base-cache work counters.

:mod:`repro.service.parallel` runs both pipelines *concurrently*:
:class:`~repro.service.parallel.ParallelPublisher` and
:class:`~repro.service.parallel.ParallelRetriever` shard a batch by
base/family affinity (:func:`~repro.service.parallel.plan_shards`) onto
a thread pool — publishes under the repository's exclusive write lock,
retrievals under the shared read lock — and report critical-path
(overlapped) simulated time per shard on top of the sequential reports.

:mod:`repro.service.maintenance` closes the lifecycle — the deletion
and reclamation half an operator runs against a churning repository:

* :class:`~repro.service.maintenance.MaintenanceService` — batched
  deletes with per-item error isolation, plus incremental GC passes
  scheduled by the repository's exact reclaimable-bytes estimate;
* :class:`~repro.service.maintenance.MaintenanceReport` — aggregated
  accounting: per-item outcomes, interleaved GC reports, exact byte
  movement and the charged delete/GC seconds.

:mod:`repro.service.rebase` is the heavyweight maintenance half:
:class:`~repro.service.rebase.RebaseService` takes the candidate
base package-sets proposed by :class:`~repro.analysis.mining.BaseMiner`
and applies them — publishing the merged base, merging master graphs,
repointing every member VMI and removing the obsoleted donor bases —
as an oplog-journaled, crash-recoverable operation (``rebase.json``
intent journal, recovered on the next run), with
:class:`~repro.service.rebase.RebaseReport` accounting the bytes
reclaimed and the VMIs migrated.

:mod:`repro.service.server` / :mod:`repro.service.client` put the
whole thing behind a socket — a long-running multi-tenant daemon
(:class:`~repro.service.server.ImageServer`) that owns a durable
workspace, serves many concurrent clients over the length-prefixed
JSON protocol of :mod:`repro.service.protocol`, enforces per-tenant
namespaces and quotas (:mod:`repro.service.tenancy`) and bounds its
own load (:mod:`repro.service.admission`); the typed
:class:`~repro.service.client.RemoteClient` is what the CLI's
``--remote`` mode and the differential suites speak.

See DESIGN.md ("Scale-out publish pipeline", "Retrieval scale-out",
"Deletion and garbage collection", "The image server") for how this
layer relates to the per-upload / per-request paths.
"""

from repro.service.admission import AdmissionController
from repro.service.batch import (
    BatchItemResult,
    BatchPublisher,
    BatchPublishReport,
    dedup_aware_order,
)
from repro.service.client import RemoteClient, parse_endpoint
from repro.service.maintenance import (
    DeleteItemResult,
    MaintenanceReport,
    MaintenanceService,
)
from repro.service.parallel import (
    ParallelPublisher,
    ParallelPublishReport,
    ParallelRetriever,
    ParallelRetrieveReport,
    ShardAccount,
    plan_shards,
)
from repro.service.rebase import (
    RebaseReport,
    RebaseService,
)
from repro.service.retrieval import (
    BatchRetrieveReport,
    BatchRetriever,
    RetrieveItemResult,
    base_affine_order,
)
from repro.service.server import ImageServer, ServerConfig
from repro.service.tenancy import (
    TenantQuota,
    TenantRegistry,
    TenantUsage,
    namespaced,
    split_namespace,
)

__all__ = [
    "AdmissionController",
    "BatchItemResult",
    "BatchPublisher",
    "BatchPublishReport",
    "BatchRetrieveReport",
    "BatchRetriever",
    "DeleteItemResult",
    "MaintenanceReport",
    "MaintenanceService",
    "ParallelPublishReport",
    "ParallelPublisher",
    "ImageServer",
    "ParallelRetrieveReport",
    "ParallelRetriever",
    "RebaseReport",
    "RebaseService",
    "RemoteClient",
    "RetrieveItemResult",
    "ServerConfig",
    "ShardAccount",
    "TenantQuota",
    "TenantRegistry",
    "TenantUsage",
    "base_affine_order",
    "dedup_aware_order",
    "namespaced",
    "parse_endpoint",
    "plan_shards",
    "split_namespace",
]
