"""Batch retrieval: many VMIs, one pipeline, warm caches.

Serving a burst of retrieval requests one :meth:`~repro.core.assembler.
VMIAssembler.retrieve` call at a time re-copies the same base image and
re-derives the same install plan for every member of a VMI family.
:class:`BatchRetriever` drives one :class:`~repro.core.assembly_plan.
AssemblyPlanner` over the whole batch instead:

* **Order.**  :func:`base_affine_order` sorts a batch so requests
  sharing a stored base — and, within a base, sharing a full assembly
  plan — run consecutively.  The first request of a run charges the
  cold base copy and derives the plan; every follower clones the warm
  local copy and replays the cached plan.  Output is unaffected: the
  assembled VMIs are observationally identical in every ordering, so
  ordering is purely a cost lever (``order="given"`` preserves arrival
  order for workloads where it is part of the experiment).
* **Accounting.**  :class:`BatchRetrieveReport` aggregates the Figure
  5a component stack across the batch plus the planner's work counters
  (plans derived vs replayed, cold copies vs warm clones), so the
  amortisation is measurable rather than assumed.

Failure isolation mirrors the publish pipeline: a failing item (unknown
name, incompatible composition) is recorded and the batch continues,
unless ``on_error="raise"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterable, Sequence

from repro.core.assembler import RETRIEVAL_COMPONENTS, RetrievalReport
from repro.core.assembly_plan import (
    AssemblyPlanner,
    PlannerStats,
    RetrievalRequest,
)
from repro.errors import ReproError
from repro.sim.clock import TimeBreakdown

__all__ = [
    "BatchRetrieveReport",
    "BatchRetriever",
    "RetrieveItemResult",
    "base_affine_order",
    "components_line",
]

#: progress callback: (items done, batch size, result of the last item)
ProgressFn = Callable[[int, int, "RetrieveItemResult"], None]


def components_line(breakdown: TimeBreakdown) -> str:
    """The Figure-5a component stack as one report line fragment."""
    return ", ".join(
        f"{label} {breakdown.component(label):.1f}s"
        for label in RETRIEVAL_COMPONENTS
    )


def _affine_key(request: RetrievalRequest) -> tuple:
    return (request.base_key, request.plan_key(), request.name)


def base_affine_order(
    requests: Iterable[RetrievalRequest],
) -> list[RetrievalRequest]:
    """Order a batch so the warm base and plan caches peak.

    Deterministic sort key, coarse to fine:

    1. base blob key — requests against one stored base run
       consecutively, so its warm local copy serves every follower;
    2. full plan key — within a base, identical ``(primary identity
       sequence)`` requests are adjacent, so one derived plan replays
       for the whole run;
    3. name — a total order, so batches are reproducible.

    The sort is stable, so equal-key requests keep their given order.
    """
    return sorted(requests, key=_affine_key)


@dataclass(frozen=True)
class RetrieveItemResult:
    """Outcome of one batch item: a report or a recorded failure."""

    #: index of this request in the caller's sequence (not the
    #: execution position — the batch may have been reordered)
    position: int
    name: str
    report: RetrievalReport | None = None
    error: str | None = None
    #: True when the install plan was replayed from the cache
    plan_hit: bool = False
    #: True when the base copy was served from the warm local cache
    warm_base: bool = False

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass(frozen=True)
class BatchRetrieveReport:
    """What one retrieval batch served, and what it cost in aggregate."""

    #: per-item outcomes in processing order: name-resolution failures
    #: as they were hit, then executed retrievals in execution order
    #: (which may differ from caller order — see ``position``)
    results: tuple[RetrieveItemResult, ...]
    #: PlannerStats delta attributable to this batch
    planner_stats: PlannerStats

    # -- outcomes -------------------------------------------------------

    @property
    def n_items(self) -> int:
        return len(self.results)

    @property
    def n_retrieved(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def n_failed(self) -> int:
        return self.n_items - self.n_retrieved

    def failures(self) -> list[RetrieveItemResult]:
        return [r for r in self.results if not r.ok]

    def reports(self) -> list[RetrievalReport]:
        return [r.report for r in self.results if r.report is not None]

    def result_for(self, name: str) -> RetrieveItemResult | None:
        """The outcome of the (first) item with this request name."""
        for r in self.results:
            if r.name == name:
                return r
        return None

    # -- aggregated cost ------------------------------------------------

    @cached_property
    def breakdown(self) -> TimeBreakdown:
        """The Figure-5a component stack summed over the batch."""
        merged = TimeBreakdown()
        for report in self.reports():
            merged = merged.merged(report.breakdown)
        return merged

    @property
    def simulated_seconds(self) -> float:
        """Total simulated retrieval duration across the batch."""
        return self.breakdown.total

    def component(self, label: str) -> float:
        return self.breakdown.component(label)

    @property
    def plan_hits(self) -> int:
        return sum(1 for r in self.results if r.plan_hit)

    @property
    def warm_base_hits(self) -> int:
        return sum(1 for r in self.results if r.warm_base)

    @property
    def retrieval_rate(self) -> float:
        """Served VMIs per simulated second (batch throughput)."""
        seconds = self.simulated_seconds
        return self.n_retrieved / seconds if seconds else 0.0

    def render(self) -> str:
        """A compact operator-facing summary of the batch."""
        stats = self.planner_stats
        lines = [
            f"retrieved {self.n_retrieved}/{self.n_items} VMIs in "
            f"{self.simulated_seconds:.1f} simulated s "
            f"({self.retrieval_rate:.2f} VMI/s)",
            f"  components: {components_line(self.breakdown)}",
            f"  plans: {stats.plans_derived} derived, "
            f"{stats.plan_hits} replayed from cache "
            f"({stats.plan_invalidations} invalidated)",
            f"  base copies: {stats.base_copies} cold, "
            f"{stats.base_cache_hits} served warm",
        ]
        for failure in self.failures():
            lines.append(f"  FAILED {failure.name}: {failure.error}")
        return "\n".join(lines)


class BatchRetriever:
    """Drives one :class:`AssemblyPlanner` over whole request batches."""

    def __init__(self, planner: AssemblyPlanner) -> None:
        self.planner = planner

    def retrieve_many(
        self,
        requests: Sequence[RetrievalRequest | str],
        *,
        order: str = "affine",
        progress: ProgressFn | None = None,
        on_error: str = "continue",
    ) -> BatchRetrieveReport:
        """Retrieve a batch; returns the aggregated report.

        Items are :class:`RetrievalRequest` objects or published VMI
        names (resolved against the repository's records).  ``order``
        is ``"affine"`` (default, :func:`base_affine_order`) or
        ``"given"`` (preserve the caller's sequence).  ``on_error`` is
        ``"continue"`` (record the failure, keep going) or ``"raise"``.

        Raises:
            ValueError: unknown ``order`` / ``on_error`` value.
            ReproError: a failing retrieval, when ``on_error="raise"``
                (including unresolvable names).
        """
        if order not in ("affine", "given"):
            raise ValueError(f"unknown batch order {order!r}")
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")

        n_total = len(requests)
        results: list[RetrieveItemResult] = []

        def record_item(item: RetrieveItemResult) -> None:
            results.append(item)
            if progress is not None:
                progress(len(results), n_total, item)

        repo = self.planner.repo
        resolved: list[tuple[int, RetrievalRequest]] = []
        for position, item in enumerate(requests):
            if isinstance(item, RetrievalRequest):
                request = item
            else:
                try:
                    record = repo.get_vmi_record(item)
                except ReproError as exc:
                    if on_error == "raise":
                        raise
                    record_item(
                        RetrieveItemResult(
                            position=position, name=item, error=str(exc)
                        )
                    )
                    continue
                request = RetrievalRequest.for_record(record)
            resolved.append((position, request))

        if order == "affine":
            # key on the request alone; the stable sort keeps
            # equal-key requests in their given (position) order
            resolved.sort(key=lambda pr: _affine_key(pr[1]))
        stats_before = self.planner.stats.snapshot()

        for position, request in resolved:
            try:
                planned = self.planner.assemble(request)
            except ReproError as exc:
                if on_error == "raise":
                    raise
                record_item(
                    RetrieveItemResult(
                        position=position,
                        name=request.name,
                        error=str(exc),
                    )
                )
            else:
                record_item(
                    RetrieveItemResult(
                        position=position,
                        name=request.name,
                        report=planned.report,
                        plan_hit=planned.plan_hit,
                        warm_base=planned.warm_base,
                    )
                )

        return BatchRetrieveReport(
            results=tuple(results),
            planner_stats=self.planner.stats.since(stats_before),
        )
