"""The long-running multi-tenant image server (DESIGN.md §13).

One daemon owns one repository (usually a durable
:class:`~repro.repository.workspace.Workspace`) and multiplexes many
concurrent clients onto it over the length-prefixed JSON protocol of
:mod:`repro.service.protocol`:

* **Concurrency.**  A thread-per-connection reader feeds a
  :class:`~concurrent.futures.ThreadPoolExecutor` of ``workers``
  request handlers.  Retrievals, fsck and stats run under the
  repository's *shared* read lock and overlap freely; publishes,
  deletes, GC and checkpoints run under the *exclusive* write lock —
  the same coarse transaction model the in-process parallel executors
  use, so everything the differential suites proved about lock-mediated
  interleavings carries over to the socket boundary.
* **Admission control.**  Occupancy is bounded at
  ``workers + queue_limit`` by the
  :class:`~repro.service.admission.AdmissionController`; requests
  beyond it are rejected immediately with the machine-readable
  ``overloaded`` code instead of queueing without bound.  Per-tenant
  in-flight ceilings and stored-bytes quotas are enforced by the
  :class:`~repro.service.tenancy.TenantRegistry` (codes
  ``tenant-busy`` / ``quota-exceeded``).
* **Checkpoint on idle.**  A workspace-backed server folds its
  write-ahead op-log into a snapshot whenever it has been quiet for
  ``checkpoint_idle_s`` — reopen cost stays bounded without stealing
  time from a busy serving loop.
* **Graceful drain.**  :meth:`ImageServer.stop` (the CLI wires it to
  SIGTERM) stops accepting connections, lets every in-flight request
  finish, rejects late frames with code ``draining``, writes a final
  checkpoint and releases the workspace.  A SIGKILL instead loses at
  most the op the journal never reached — the workspace's write-ahead
  recovery contract, which the lifecycle suite exercises end-to-end.

The request path minus the sockets is :meth:`ImageServer.
handle_message` — a pure ``dict -> dict`` function, which is what the
unit suites drive; the socket layer is exercised by the property,
lifecycle and CLI suites.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.system import Expelliarmus
from repro.errors import (
    AdmissionRejectedError,
    NotInRepositoryError,
    ProtocolError,
    ReproError,
    UnknownTenantError,
)
from repro.service.admission import AdmissionController
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REQUEST_OPS,
    error_payload,
    manifest_digest,
    ok_payload,
    recv_message,
    send_message,
)
from repro.service.tenancy import (
    TenantQuota,
    TenantRegistry,
    namespaced,
    split_namespace,
)

#: per-workspace ownership journal: stored name -> publishing tenant.
#: What keeps a pre-existing *global* name shaped like ``acme/web``
#: (published locally, never through the daemon) invisible to tenant
#: ``acme`` even though the namespace prefix matches.
OWNERS_FILE = "owners.json"

__all__ = ["ImageServer", "ServerConfig"]

#: ops that act inside a tenant namespace and therefore require one
_TENANT_OPS = frozenset(
    {
        "publish",
        "publish-many",
        "retrieve",
        "retrieve-many",
        "delete",
        "delete-many",
    }
)


@dataclass(frozen=True)
class ServerConfig:
    """Everything an operator tunes about one daemon."""

    host: str = "127.0.0.1"
    #: 0 = ephemeral (the bound port comes back from ``start()``)
    port: int = 0
    #: handler threads — concurrent request executions
    workers: int = 4
    #: admitted requests that may wait for a worker beyond the
    #: executing ones; past ``workers + queue_limit`` requests are
    #: rejected with code ``overloaded``
    queue_limit: int = 16
    #: quota applied to tenants without an explicit entry
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    #: explicit per-tenant quotas (pre-registered names)
    tenants: dict[str, TenantQuota] | None = None
    #: True: only pre-registered tenants are served
    strict_tenants: bool = False
    #: quiet seconds before a workspace-backed server checkpoints;
    #: None disables idle checkpointing
    checkpoint_idle_s: float | None = 1.0
    #: ceiling on waiting for in-flight requests during drain
    drain_timeout_s: float = 30.0


class ImageServer:
    """A daemon serving one :class:`Expelliarmus` to many clients."""

    def __init__(
        self,
        system: Expelliarmus,
        config: ServerConfig | None = None,
    ) -> None:
        self.system = system
        self.config = config or ServerConfig()
        self.tenants = TenantRegistry(
            default_quota=self.config.default_quota,
            tenants=self.config.tenants,
            strict=self.config.strict_tenants,
        )
        self.admission = AdmissionController(
            self.config.workers, self.config.queue_limit
        )
        self._pool: ThreadPoolExecutor | None = None
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._stop_once = threading.Lock()
        self._last_activity = time.monotonic()
        self._inflight = 0
        #: requests between arrival and *response sent* — the window
        #: the drain must wait out (``_inflight`` alone ends when the
        #: handler returns, before the reply hits the socket)
        self._responding = 0
        self._inflight_lock = threading.Lock()
        #: idle checkpoints written by the background policy
        self.idle_checkpoints = 0
        #: requests served (ok or error response sent)
        self.requests_served = 0
        #: corpora built on demand, cached by canonical source key
        self._corpora: dict[tuple, object] = {}
        self._corpora_lock = threading.Lock()
        #: ownership journal beside the workspace (None in-memory);
        #: rewritten on every ownership change, loaded on construction
        self._owners_path: Path | None = None
        self._owners_lock = threading.Lock()
        workspace = self.system.workspace
        if workspace is not None and workspace.path is not None:
            self._owners_path = Path(workspace.path) / OWNERS_FILE
            self._load_owners()

    def _load_owners(self) -> None:
        if self._owners_path is None or not self._owners_path.exists():
            return
        try:
            data = json.loads(self._owners_path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        for stored, tenant in data.items():
            try:
                self.tenants.record_owned(str(tenant), str(stored))
            except UnknownTenantError:
                # strict registry, tenant no longer provisioned — the
                # image stays stored but is not served to anyone
                continue

    def _save_owners(self) -> None:
        if self._owners_path is None:
            return
        with self._owners_lock:
            tmp = self._owners_path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(self.tenants.owners(), sort_keys=True)
            )
            tmp.replace(self._owners_path)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_workspace(
        cls, path, config: ServerConfig | None = None
    ) -> "ImageServer":
        """A server owning the durable workspace at ``path``.

        Raises:
            WorkspaceError: broken snapshot/op-log pair.
            WorkspaceLockedError: another live process (e.g. a second
                daemon) holds the workspace — the holder pid travels
                in the error, and the CLI surfaces it instead of a
                traceback.
        """
        return cls(Expelliarmus.open(path), config)

    @property
    def endpoint(self) -> tuple[str, int]:
        """The bound ``(host, port)``.

        Raises:
            RuntimeError: the server was never started.
        """
        if self._listener is None:
            raise RuntimeError("server is not listening")
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    # reprolint: unguarded — start() runs once on the owning thread
    # before any worker exists; _threads is never touched concurrently
    def start(self) -> tuple[str, int]:
        """Bind, spawn the accept loop and workers; returns the
        endpoint.  Idempotent once started."""
        if self._listener is not None:
            return self.endpoint
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        listener.settimeout(0.2)
        self._listener = listener
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="image-server",
        )
        accept = threading.Thread(
            target=self._accept_loop, name="server-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        if (
            self.config.checkpoint_idle_s is not None
            and self.system.workspace is not None
        ):
            idle = threading.Thread(
                target=self._idle_loop, name="server-idle", daemon=True
            )
            idle.start()
            self._threads.append(idle)
        return self.endpoint

    def request_shutdown(self) -> None:
        """Begin the drain (signal-handler safe: only sets a flag)."""
        self._draining.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a shutdown is requested; True when it was."""
        return self._draining.wait(timeout)

    def stop(self) -> None:
        """Drain and shut down: no new connections, in-flight requests
        finish, late frames get ``draining`` rejections, a final
        checkpoint is written, the workspace lock is released.
        Idempotent."""
        self.request_shutdown()
        with self._stop_once:
            if self._stopped.is_set():
                return
            if self._listener is not None:
                self._listener.close()
            deadline = (
                time.monotonic() + self.config.drain_timeout_s
            )
            while (
                self._inflight or self._responding
            ) and time.monotonic() < deadline:
                time.sleep(0.01)
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            with self._conn_lock:
                conns = list(self._connections)
                self._connections.clear()
            for conn in conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already gone
                    pass
            if self.system.workspace is not None:
                with self.system.repo.lock.write():
                    self.system.save()
                self.system.close()
            self._stopped.set()

    def serve_forever(self) -> None:
        """Start, then block until a shutdown request drains us."""
        self.start()
        self.wait()
        self.stop()

    def __enter__(self) -> "ImageServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # socket plumbing
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._conn_lock:
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(None)
            while True:
                try:
                    message = recv_message(conn)
                except ProtocolError as exc:
                    # a framing violation poisons the stream: answer
                    # once (best effort), then hang up
                    self._respond(conn, error_payload(exc))
                    return
                if message is None:
                    return
                with self._inflight_lock:
                    self._responding += 1
                try:
                    response = self._handle_on_pool(message)
                    delivered = self._respond(conn, response)
                finally:
                    with self._inflight_lock:
                        self._responding -= 1
                if not delivered:
                    return
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass

    def _respond(self, conn: socket.socket, response: dict) -> bool:
        try:
            send_message(conn, response)
        except OSError:
            return False
        self.requests_served += 1
        return True

    def _handle_on_pool(self, message: dict) -> dict:
        """Admit, then execute on a worker thread (the reader waits)."""
        if self._draining.is_set():
            return error_payload(
                AdmissionRejectedError(
                    "draining",
                    "server is draining — retry against the "
                    "restarted instance",
                )
            )
        try:
            with self.admission.admit():
                future = self._pool.submit(
                    self.handle_message, message
                )
                return future.result()
        except AdmissionRejectedError as exc:
            return error_payload(exc)

    # ------------------------------------------------------------------
    # idle checkpoint policy
    # ------------------------------------------------------------------

    def _idle_loop(self) -> None:
        idle_s = self.config.checkpoint_idle_s
        tick = min(max(idle_s / 4.0, 0.02), 0.5)
        while not self._draining.wait(tick):
            if self._inflight:
                continue
            if time.monotonic() - self._last_activity < idle_s:
                continue
            workspace = self.system.workspace
            if (
                workspace is None
                or workspace.ops_since_checkpoint == 0
            ):
                continue
            with self.system.repo.lock.write():
                # re-check under the lock: a request may have landed
                if self._inflight:
                    continue
                self.system.save()
            self.idle_checkpoints += 1

    # ------------------------------------------------------------------
    # the request path (sockets excluded): dict -> dict
    # ------------------------------------------------------------------

    def handle_message(self, message: dict) -> dict:
        """Validate, authorize and dispatch one request."""
        with self._inflight_lock:
            self._inflight += 1
        try:
            return self._handle_inner(message)
        except ReproError as exc:
            return error_payload(exc)
        except Exception as exc:  # the wire boundary catches everything
            return error_payload(exc)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
            self._last_activity = time.monotonic()

    def _handle_inner(self, message: dict) -> dict:
        op = message.get("op")
        if op not in REQUEST_OPS:
            return {
                "ok": False,
                "error": {
                    "code": "unknown-op",
                    "message": f"unknown operation {op!r}",
                    "retriable": False,
                    "known_ops": list(REQUEST_OPS),
                },
            }
        tenant = message.get("tenant")
        args = message.get("args") or {}
        if not isinstance(args, dict):
            raise ProtocolError("request args must be an object")
        if op in _TENANT_OPS:
            if tenant is None:
                raise ProtocolError(
                    f"operation {op!r} requires a tenant"
                )
            with self.tenants.slot(tenant):
                return ok_payload(
                    self._dispatch(op, tenant, args)
                )
        return ok_payload(self._dispatch(op, tenant, args))

    def _dispatch(
        self, op: str, tenant: str | None, args: dict
    ) -> dict:
        handler = getattr(self, "_op_" + op.replace("-", "_"))
        return handler(tenant, args)

    # ------------------------------------------------------------------
    # corpus sources
    # ------------------------------------------------------------------

    def _corpus(self, source: dict):
        """The (cached) corpus a source descriptor names.

        Raises:
            ProtocolError: unknown or malformed source descriptor.
        """
        if not isinstance(source, dict):
            raise ProtocolError("publish source must be an object")
        kind = source.get("kind")
        if kind == "table2":
            key: tuple = ("table2",)
        elif kind == "scale":
            try:
                key = (
                    "scale",
                    int(source["n_vmis"]),
                    int(source.get("n_families", 8)),
                    str(source.get("seed", "scale")),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    f"malformed scale source: {exc}"
                ) from exc
        else:
            raise ProtocolError(
                f"unknown corpus source kind {kind!r}"
            )
        with self._corpora_lock:
            corpus = self._corpora.get(key)
            if corpus is None:
                if key[0] == "table2":
                    from repro.workloads.generator import (
                        standard_corpus,
                    )

                    corpus = standard_corpus()
                else:
                    from repro.workloads.scale import scale_corpus

                    corpus = scale_corpus(
                        key[1], n_families=key[2], seed=key[3]
                    )
                self._corpora[key] = corpus
            return corpus

    def _build_item(self, source: dict, item):
        """Build the VMI one (source, item) reference names.

        Raises:
            ProtocolError: item of the wrong type for the source, or
                outside the corpus.
        """
        corpus = self._corpus(source)
        try:
            if source.get("kind") == "scale":
                return corpus.build(int(item))
            return corpus.build(str(item))
        except (IndexError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"corpus item {item!r} is not buildable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _op_ping(self, tenant, args) -> dict:
        return {
            "pong": True,
            "version": PROTOCOL_VERSION,
            "pid": os.getpid(),
        }

    def _publish_one(self, tenant: str, source: dict, item) -> dict:
        vmi = self._build_item(source, item)
        vmi.name = namespaced(tenant, vmi.name)
        charge = vmi.mounted_size
        # reserve quota before touching the repository, so a tenant at
        # its ceiling never costs the store any work
        self.tenants.charge_publish(tenant, charge)
        try:
            with self.system.repo.lock.write():
                report = self.system.publish(vmi)
        except BaseException:
            self.tenants.refund_publish(tenant, charge)
            raise
        self.tenants.record_owned(tenant, vmi.name)
        self._save_owners()
        return {
            "name": vmi.name,
            "simulated_seconds": report.publish_time,
            "similarity": report.similarity,
            "exported_packages": len(report.exported_packages),
            "deduplicated_packages": len(
                report.deduplicated_packages
            ),
            "charged_bytes": charge,
        }

    def _op_publish(self, tenant, args) -> dict:
        return self._publish_one(
            tenant, args.get("source"), args.get("item")
        )

    def _op_publish_many(self, tenant, args) -> dict:
        source = args.get("source")
        items = args.get("items")
        if not isinstance(items, list):
            raise ProtocolError(
                "publish-many needs an 'items' list"
            )
        results = []
        simulated = 0.0
        failed = 0
        for item in items:
            try:
                result = self._publish_one(tenant, source, item)
            except ReproError as exc:
                failed += 1
                results.append(
                    {
                        "item": item,
                        "error": error_payload(exc)["error"],
                    }
                )
            else:
                simulated += result["simulated_seconds"]
                results.append({"item": item, **result})
        return {
            "n_items": len(items),
            "n_published": len(items) - failed,
            "n_failed": failed,
            "simulated_seconds": simulated,
            "results": results,
        }

    def _retrieve_one(self, tenant: str, name: str) -> dict:
        stored = namespaced(tenant, name)
        # authorization by recorded ownership, not by prefix shape: a
        # pre-existing global name that merely *looks* namespaced
        # (e.g. a local publish of 'acme/web') is not the tenant's
        if not self.tenants.owns(tenant, stored):
            raise NotInRepositoryError("VMI", stored)
        with self.system.repo.lock.read():
            report = self.system.retrieve(stored)
        return {
            "name": name,
            "stored_name": stored,
            "simulated_seconds": report.retrieval_time,
            "manifest_digest": manifest_digest(
                report.vmi.full_manifest()
            ),
            "imported_packages": list(report.imported_packages),
            "mounted_size": report.vmi.mounted_size,
            "n_files": report.vmi.n_files,
            "components": dict(report.breakdown.totals),
        }

    def _op_retrieve(self, tenant, args) -> dict:
        name = args.get("name")
        if not isinstance(name, str):
            raise ProtocolError("retrieve needs a 'name' string")
        return self._retrieve_one(tenant, name)

    def _tenant_published(self, tenant: str) -> list[str]:
        """The tenant's published (un-namespaced) names, sorted.

        Catalogued by recorded ownership — the same authorization
        source retrieval uses — so a global name with a look-alike
        prefix never appears in another tenant's listing.
        """
        names = []
        for stored in self.tenants.owned_names(tenant):
            _, name = split_namespace(stored)
            names.append(name)
        return sorted(names)

    def _op_retrieve_many(self, tenant, args) -> dict:
        names = args.get("names")
        if names is None:
            names = self._tenant_published(tenant)
        if not isinstance(names, list):
            raise ProtocolError(
                "retrieve-many needs a 'names' list (or null for "
                "all of the tenant's images)"
            )
        results = []
        simulated = 0.0
        failed = 0
        for name in names:
            try:
                result = self._retrieve_one(tenant, str(name))
            except ReproError as exc:
                failed += 1
                results.append(
                    {
                        "name": name,
                        "error": error_payload(exc)["error"],
                    }
                )
            else:
                simulated += result["simulated_seconds"]
                results.append(result)
        return {
            "n_items": len(names),
            "n_retrieved": len(names) - failed,
            "n_failed": failed,
            "simulated_seconds": simulated,
            "results": results,
        }

    def _delete_one(self, tenant: str, name: str) -> dict:
        stored = namespaced(tenant, name)
        if not self.tenants.owns(tenant, stored):
            raise NotInRepositoryError("VMI", stored)
        with self.system.repo.lock.write():
            record = self.system.repo.get_vmi_record(stored)
            with self.system.clock.measure() as window:
                self.system.delete(stored)
        self.tenants.credit_delete(tenant, record.mounted_size)
        self.tenants.forget_owned(tenant, stored)
        self._save_owners()
        return {
            "name": name,
            "stored_name": stored,
            "simulated_seconds": window.total,
            "credited_bytes": record.mounted_size,
        }

    def _op_delete(self, tenant, args) -> dict:
        name = args.get("name")
        if not isinstance(name, str):
            raise ProtocolError("delete needs a 'name' string")
        return self._delete_one(tenant, name)

    def _op_delete_many(self, tenant, args) -> dict:
        names = args.get("names")
        if not isinstance(names, list):
            raise ProtocolError("delete-many needs a 'names' list")
        results = []
        failed = 0
        for name in names:
            try:
                results.append(self._delete_one(tenant, str(name)))
            except ReproError as exc:
                failed += 1
                results.append(
                    {
                        "name": name,
                        "error": error_payload(exc)["error"],
                    }
                )
        return {
            "n_items": len(names),
            "n_deleted": len(names) - failed,
            "n_failed": failed,
            "results": results,
        }

    def _op_gc(self, tenant, args) -> dict:
        with self.system.repo.lock.write():
            report = self.system.garbage_collect(
                full=bool(args.get("full", False))
            )
        return {
            "mode": report.mode,
            "reclaimed_bytes": report.reclaimed_bytes,
            "removed_packages": report.removed_packages,
            "removed_user_data": report.removed_user_data,
            "removed_bases": report.removed_bases,
            "records_scanned": report.records_scanned,
            "graph_rebuilds": report.graph_rebuilds,
            "simulated_seconds": report.gc_seconds,
        }

    def _op_fsck(self, tenant, args) -> dict:
        with self.system.repo.lock.read():
            report = self.system.fsck()
        findings = [str(f) for f in report.findings]
        # the refund clamp records every mismatched credit; surface it
        # alongside the repository checks instead of silently zeroing
        drift_bytes, drift_events = self.tenants.total_drift()
        if drift_events:
            findings.append(
                "[quota-drift] tenant-registry: "
                f"{drift_events} refund event(s) clamped, "
                f"{drift_bytes} byte(s) unaccounted"
            )
        return {
            "clean": report.clean and not drift_events,
            "checked_blobs": report.checked_blobs,
            "checked_vmis": report.checked_vmis,
            "findings": findings,
        }

    def _op_stats(self, tenant, args) -> dict:
        with self.system.repo.lock.read():
            by_kind = self.system.repository_breakdown()
            total = self.system.repository_size
            n_vmis = len(self.system.published_names())
        usages = self.tenants.usages()
        workspace = self.system.workspace
        return {
            "repository": {
                "total_bytes": total,
                "bytes_by_kind": by_kind,
                "n_vmis": n_vmis,
            },
            "tenants": {
                name: {
                    "bytes_stored": u.bytes_stored,
                    "published": u.published,
                    "inflight": u.inflight,
                    "requests": u.requests,
                    "quota_rejections": u.quota_rejections,
                    "busy_rejections": u.busy_rejections,
                    "drift_bytes": u.drift_bytes,
                    "drift_events": u.drift_events,
                    "max_bytes": u.quota.max_bytes,
                    "max_inflight": u.quota.max_inflight,
                }
                for name, u in usages.items()
            },
            "server": {
                "workers": self.config.workers,
                "queue_limit": self.config.queue_limit,
                "admitted": self.admission.admitted,
                "rejected": self.admission.rejected,
                "peak_active": self.admission.peak_active,
                "idle_checkpoints": self.idle_checkpoints,
                "draining": self._draining.is_set(),
            },
            "workspace": (
                None
                if workspace is None
                else {
                    "path": str(workspace.path),
                    "ops_since_checkpoint": (
                        workspace.ops_since_checkpoint
                    ),
                    "checkpoints_written": (
                        workspace.checkpoints_written
                    ),
                }
            ),
        }

    def _op_checkpoint(self, tenant, args) -> dict:
        if self.system.workspace is None:
            return {"checkpointed": False, "reason": "no workspace"}
        with self.system.repo.lock.write():
            ops = self.system.workspace.ops_since_checkpoint
            size = self.system.save()
        return {
            "checkpointed": True,
            "snapshot_bytes": size,
            "ops_folded": ops,
        }

    def _op_shutdown(self, tenant, args) -> dict:
        self.request_shutdown()
        return {"draining": True}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = (
            f"{self.endpoint[0]}:{self.endpoint[1]}"
            if self._listener is not None
            else "unbound"
        )
        return (
            f"<ImageServer {where} inflight={self._inflight} "
            f"served={self.requests_served}>"
        )
