"""Wire protocol of the image service (DESIGN.md §13).

Length-prefixed JSON over a stream socket — the simplest protocol that
is still *framed* (a reader always knows where a message ends) and
*machine-readable* on both the happy and the rejection path:

* **Framing.**  Every message is a 4-byte big-endian unsigned length
  followed by that many bytes of UTF-8 JSON.  Frames above
  :data:`MAX_FRAME_BYTES` are refused on both sides (an oversized
  *announced* length is rejected before any payload is read, so a
  hostile or buggy peer cannot make the server buffer gigabytes); a
  connection that ends mid-frame is a *torn frame* and raises
  :class:`~repro.errors.ProtocolError` instead of yielding garbage.
* **Requests** are objects ``{"op": str, "tenant": str | None,
  "args": {...}}``.  The op names are enumerated in
  :data:`REQUEST_OPS`; unknown ops are rejected with code
  ``unknown-op``, malformed requests with ``bad-request``.
* **Responses** are ``{"ok": true, "result": {...}}`` or
  ``{"ok": false, "error": {"code": str, "message": str,
  "retriable": bool, ...}}``.  :func:`error_payload` maps the
  library's exception hierarchy onto stable error codes (and carries
  structured diagnostics — a :class:`~repro.errors.
  WorkspaceLockedError` travels with its ``holder_pid``);
  :func:`exception_from_payload` restores a *typed* exception on the
  client, so ``except QuotaExceededError`` works across the wire.

**Corpus sources.**  VMIs are never shipped over the socket: the
synthetic corpora are pure functions of their configuration, so a
publish request names ``(source, item)`` and the server builds the
identical image locally (:func:`table2_source`, :func:`scale_source`
build the source descriptors).  This mirrors how a registry ingests
by reference, keeps frames tiny, and is what lets the differential
suite demand byte-identical repositories on both ends.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct

from repro.errors import (
    AdmissionRejectedError,
    LockTimeoutError,
    NotInRepositoryError,
    ProtocolError,
    QuotaExceededError,
    RemoteError,
    ReproError,
    UnknownTenantError,
    WorkspaceError,
    WorkspaceLockedError,
)

__all__ = [
    "ADMISSION_CODES",
    "GENERIC_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "error_payload",
    "exception_from_payload",
    "make_request",
    "manifest_digest",
    "ok_payload",
    "recv_message",
    "scale_source",
    "send_message",
    "table2_source",
]

#: bumped when the message shapes change incompatibly
PROTOCOL_VERSION = 1

#: hard ceiling on one frame's JSON payload; far above any legitimate
#: request/response, far below anything that could hurt the server
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("!I")

#: every reason code an :class:`AdmissionRejectedError` may carry —
#: the one branch of :func:`error_payload` whose code is dynamic
#: (``exc.code``), enumerated here so the code <-> exception mapping
#: stays statically checkable (reprolint RL006, DESIGN.md §16)
ADMISSION_CODES = ("overloaded", "tenant-busy", "draining")

#: emitted codes the client deliberately degrades to
#: :class:`RemoteError`: the server-side class carries no diagnostics
#: worth a dedicated client-side constructor
GENERIC_CODES = ("workspace-error", "repro-error", "internal")

#: every operation the server understands; "tenant" column of the
#: dispatch — namespaced ops require one, admin ops may omit it
REQUEST_OPS = (
    "ping",
    "publish",
    "publish-many",
    "retrieve",
    "retrieve-many",
    "delete",
    "delete-many",
    "gc",
    "fsck",
    "stats",
    "checkpoint",
    "shutdown",
)


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    """Serialise one message as a length-prefixed JSON frame.

    Raises:
        ProtocolError: the encoded payload exceeds
            :data:`MAX_FRAME_BYTES` (the sender must not emit a frame
            the receiver is contractually bound to refuse).
    """
    payload = json.dumps(
        message, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return _HEADER.pack(len(payload)) + payload


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary.

    Raises:
        ProtocolError: the peer vanished mid-frame (torn frame).
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 65536))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"torn frame: connection closed after {got} of "
                f"{n} expected bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one framed message; None on clean end-of-stream.

    Raises:
        ProtocolError: oversized announced length, torn frame,
            non-JSON payload, or a payload that is not an object.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError(
            "torn frame: connection closed between header and payload"
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def send_message(sock: socket.socket, message: dict) -> None:
    """Frame and send one message."""
    sock.sendall(encode_frame(message))


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


def make_request(
    op: str, tenant: str | None = None, **args
) -> dict:
    """Build a request message (the client's only constructor)."""
    return {"op": op, "tenant": tenant, "args": args}


def table2_source() -> dict:
    """Source descriptor for the 19-image Table II corpus (items are
    image names)."""
    return {"kind": "table2"}


def scale_source(
    n_vmis: int, n_families: int = 8, seed: str = "scale"
) -> dict:
    """Source descriptor for a generated scale corpus (items are
    integer VMI indices)."""
    return {
        "kind": "scale",
        "n_vmis": n_vmis,
        "n_families": n_families,
        "seed": seed,
    }


def manifest_digest(manifest) -> str:
    """Process-stable content digest of a file manifest.

    blake2b over the manifest's content-id and size vectors — two
    manifests are byte-identical iff their digests match, and the
    digest is stable across processes (``hash()`` is not), so the
    differential suite can compare a server response against a local
    retrieval.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(manifest.content_ids.tobytes())
    h.update(manifest.sizes.tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# responses and the error-code mapping
# ---------------------------------------------------------------------------


def ok_payload(result: dict) -> dict:
    return {"ok": True, "result": result}


def error_payload(exc: BaseException) -> dict:
    """Map an exception onto the machine-readable error response.

    Typed library errors keep their diagnostics: a
    :class:`WorkspaceLockedError` carries the holder pid (the
    operator's first question), quota errors carry the exact byte
    arithmetic, admission rejections their reason code.  Anything
    unexpected maps to ``internal`` — the message crosses the wire,
    the traceback never does.
    """
    error: dict = {"message": str(exc), "retriable": False}
    if isinstance(exc, AdmissionRejectedError):
        error.update(code=exc.code, retriable=True, tenant=exc.tenant)
    elif isinstance(exc, QuotaExceededError):
        error.update(
            code="quota-exceeded",
            tenant=exc.tenant,
            requested_bytes=exc.requested_bytes,
            used_bytes=exc.used_bytes,
            limit_bytes=exc.limit_bytes,
        )
    elif isinstance(exc, UnknownTenantError):
        error.update(code="unknown-tenant", tenant=exc.tenant)
    elif isinstance(exc, WorkspaceLockedError):
        error.update(
            code="workspace-locked",
            holder_pid=exc.holder_pid,
            path=str(exc.path),
            retriable=True,
        )
    elif isinstance(exc, WorkspaceError):  # reprolint: generic
        error.update(code="workspace-error")
    elif isinstance(exc, LockTimeoutError):  # reprolint: generic
        error.update(code="lock-timeout", retriable=True)
    elif isinstance(exc, NotInRepositoryError):
        error.update(
            code="not-found", kind=exc.kind, key=str(exc.key)
        )
    elif isinstance(exc, ProtocolError):
        error.update(code="bad-request")
    elif isinstance(exc, RemoteError):
        error.update(code=exc.code)
    elif isinstance(exc, ReproError):  # reprolint: generic
        error.update(code="repro-error")
    else:
        error.update(code="internal")
    return {"ok": False, "error": error}


def exception_from_payload(error: dict) -> ReproError:
    """Restore a typed exception from an error response.

    The inverse of :func:`error_payload` for every code with a
    dedicated class; unknown or generic codes come back as
    :class:`RemoteError` carrying the code.
    """
    code = error.get("code", "internal")
    message = error.get("message", "server error")
    if code in ADMISSION_CODES:
        return AdmissionRejectedError(
            code, message, tenant=error.get("tenant")
        )
    if code == "quota-exceeded":
        return QuotaExceededError(
            error.get("tenant", "?"),
            requested_bytes=error.get("requested_bytes", 0),
            used_bytes=error.get("used_bytes", 0),
            limit_bytes=error.get("limit_bytes", 0),
        )
    if code == "unknown-tenant":
        return UnknownTenantError(error.get("tenant", "?"))
    if code == "workspace-locked":
        return WorkspaceLockedError(
            error.get("path", "?"), error.get("holder_pid", 0)
        )
    if code == "not-found":
        return NotInRepositoryError(
            error.get("kind", "object"), error.get("key", "?")
        )
    if code == "bad-request":
        return ProtocolError(message)
    if code == "lock-timeout":
        return RemoteError(code, message)
    return RemoteError(code, message)
