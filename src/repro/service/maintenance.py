"""Repository maintenance: batched deletion with scheduled GC.

The write-side lifecycle a production repository runs continuously:
tenants unpublish images in bursts (CI churn, marketplace delistings,
family retirements), and the reclaimable bytes those deletions strand
must be swept back — without a stop-the-world pass after every delete,
and without letting garbage pile up unboundedly either.

:class:`MaintenanceService` drives both halves over one repository:

* **Batched deletes.**  :meth:`~MaintenanceService.delete_many`
  unpublishes a batch with per-item failure isolation (an unknown name
  is recorded and the batch continues, unless ``on_error="raise"``),
  charging the delete cost per record.
* **GC scheduling.**  The repository's eagerly maintained refcounts
  make :meth:`~repro.repository.repo.Repository.reclaimable_bytes` an
  exact O(pending-garbage) estimate, so the service can run an
  incremental pass exactly when the stranded bytes cross
  ``gc_threshold_bytes`` — mid-batch if the batch is large — instead of
  guessing on a timer.  ``gc_threshold_bytes=None`` defers collection
  entirely; ``0`` collects after every delete that strands bytes.
* **Re-base scheduling.**  With ``rebase_threshold_bytes`` set,
  :meth:`~MaintenanceService.maybe_rebase` runs the base miner
  (read-only) and applies the journaled re-base only when the mined
  candidates' estimated savings clear the threshold — heavyweight
  base-population maintenance gated by its own predicted payoff.
* **Checkpoint scheduling.**  On a workspace-backed repository the
  write-ahead op-log grows with every delete and GC sweep; reopen cost
  is O(ops since the last checkpoint).  With ``checkpoint_every_ops``
  set, the service writes a snapshot checkpoint (truncating the log)
  whenever the journal crosses that many entries — the op-count policy
  that bounds replay work without re-snapshotting per operation.
* **Cache interaction safety.**  Every delete bumps the repository's
  ``mutations`` counter and every GC rebuild moves the affected master
  revisions, so :class:`~repro.core.assembly_plan.AssemblyPlanner`
  caches revalidate instead of serving stale plans — plans for bases
  the pass never touched keep hitting.  The integration tests pin this
  down.

:class:`MaintenanceReport` aggregates the batch: per-item outcomes,
interleaved GC reports, exact byte movement and the simulated seconds
charged under the ``"delete"`` and ``"gc"`` labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ReproError
from repro.repository.gc import GarbageCollector, GCReport
from repro.repository.repo import Repository
from repro.sim.clock import SimulatedClock
from repro.sim.costmodel import CostModel

__all__ = [
    "DeleteItemResult",
    "MaintenanceReport",
    "MaintenanceService",
]

#: progress callback: (items done, batch size, result of the last item)
ProgressFn = Callable[[int, int, "DeleteItemResult"], None]


@dataclass(frozen=True)
class DeleteItemResult:
    """Outcome of one batch delete: success or a recorded failure."""

    position: int
    name: str
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class MaintenanceReport:
    """What one maintenance batch deleted, swept and cost."""

    results: tuple[DeleteItemResult, ...]
    #: GC passes the batch triggered, in execution order
    gc_reports: tuple[GCReport, ...]
    repo_bytes_before: int
    repo_bytes_after: int
    #: exact bytes still awaiting the next pass when the batch ended
    reclaimable_after: int
    #: simulated seconds charged by the batch (deletes + GC passes)
    simulated_seconds: float = 0.0
    #: snapshot checkpoints the op-count policy scheduled mid-batch
    checkpoints: int = 0

    # -- outcomes -------------------------------------------------------

    @property
    def n_items(self) -> int:
        return len(self.results)

    @property
    def n_deleted(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def n_failed(self) -> int:
        return self.n_items - self.n_deleted

    def failures(self) -> list[DeleteItemResult]:
        return [r for r in self.results if not r.ok]

    # -- aggregated accounting ------------------------------------------

    @property
    def reclaimed_bytes(self) -> int:
        return self.repo_bytes_before - self.repo_bytes_after

    @property
    def gc_passes(self) -> int:
        return len(self.gc_reports)

    def render(self) -> str:
        """A compact operator-facing summary of the batch."""
        lines = [
            f"deleted {self.n_deleted}/{self.n_items} VMIs in "
            f"{self.simulated_seconds:.1f} simulated s",
            f"  repository: -{self.reclaimed_bytes / 1e9:.3f} GB "
            f"(now {self.repo_bytes_after / 1e9:.3f} GB), "
            f"{self.reclaimable_after / 1e9:.3f} GB awaiting GC",
        ]
        for i, gc in enumerate(self.gc_reports, start=1):
            lines.append(
                f"  gc pass {i} ({gc.mode}): reclaimed "
                f"{gc.reclaimed_bytes / 1e9:.3f} GB — "
                f"{gc.removed_packages} packages, "
                f"{gc.removed_user_data} user data, "
                f"{gc.removed_bases} bases; rebuilt "
                f"{gc.graph_rebuilds} master graphs over "
                f"{gc.records_scanned} records"
            )
        if self.checkpoints:
            lines.append(
                f"  {self.checkpoints} snapshot checkpoint(s) written "
                "(op-count policy)"
            )
        for failure in self.failures():
            lines.append(f"  FAILED {failure.name}: {failure.error}")
        return "\n".join(lines)


class MaintenanceService:
    """Batched deletion plus threshold-scheduled incremental GC."""

    def __init__(
        self,
        repo: Repository,
        clock: SimulatedClock | None = None,
        cost: CostModel | None = None,
        *,
        gc_threshold_bytes: int | None = None,
        full_gc: bool = False,
        workspace=None,
        checkpoint_every_ops: int | None = None,
        rebase_threshold_bytes: int | None = None,
    ) -> None:
        self.repo = repo
        self.clock = clock
        self.cost = cost
        self.gc_threshold_bytes = gc_threshold_bytes
        self.full_gc = full_gc
        #: the durable workspace journaling ``repo`` (checkpoint target)
        self.workspace = workspace
        self.checkpoint_every_ops = checkpoint_every_ops
        self.rebase_threshold_bytes = rebase_threshold_bytes
        self._collector = GarbageCollector(repo, clock, cost)

    # ------------------------------------------------------------------

    def collect(self, *, full: bool | None = None) -> GCReport:
        """Run one GC pass now (mode defaults to the service's)."""
        return self._collector.collect(
            full=self.full_gc if full is None else full
        )

    def maybe_collect(self) -> GCReport | None:
        """Run a pass iff the reclaimable estimate crossed the threshold."""
        if self.gc_threshold_bytes is None:
            return None
        if self.repo.reclaimable_bytes() < max(self.gc_threshold_bytes, 1):
            return None
        return self.collect()

    def maybe_rebase(self):
        """Mine, and re-base iff enough bytes would be reclaimed.

        Mining is read-only and cheap relative to a re-base, so the
        scheduling decision uses the miner's own estimate: when the
        ranked candidates promise at least ``rebase_threshold_bytes``
        of savings, the journaled re-base runs on the mined plan and
        its :class:`~repro.service.rebase.RebaseReport` is returned;
        otherwise (or with no threshold configured) ``None``.
        """
        if self.rebase_threshold_bytes is None:
            return None
        from repro.analysis.mining import BaseMiner
        from repro.service.rebase import RebaseService

        mining = BaseMiner(self.repo, self.clock, self.cost).mine()
        if mining.est_saved_bytes < max(self.rebase_threshold_bytes, 1):
            return None
        return RebaseService(
            self.repo,
            self.clock,
            self.cost,
            workspace=self.workspace,
        ).run(mining)

    def maybe_checkpoint(self) -> bool:
        """Checkpoint iff the op-log crossed the op-count threshold."""
        if self.workspace is None:
            return False
        return self.workspace.checkpoint_if_due(
            self.checkpoint_every_ops
        )

    def delete_many(
        self,
        names: Sequence[str],
        *,
        progress: ProgressFn | None = None,
        on_error: str = "continue",
    ) -> MaintenanceReport:
        """Delete a batch; returns the aggregated report.

        ``on_error`` is ``"continue"`` (record the failure, keep going)
        or ``"raise"``.  With a threshold configured, incremental GC
        passes interleave whenever the reclaimable estimate crosses it,
        and the triggered reports ride along in the result.

        Raises:
            ValueError: unknown ``on_error`` value.
            ReproError: a failing delete, when ``on_error="raise"``.
        """
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")

        bytes_before = self.repo.total_bytes()
        seconds_before = self.clock.now if self.clock else 0.0
        results: list[DeleteItemResult] = []
        gc_reports: list[GCReport] = []
        checkpoints = 0

        for position, name in enumerate(names):
            try:
                # the record delete touches two tables; commit them as
                # one transaction per item (GC passes batch their own)
                with self.repo.metadata_batch():
                    self.repo.delete_vmi_record(name)
                if self.clock is not None and self.cost is not None:
                    self.clock.advance(
                        self.cost.delete_record(), "delete"
                    )
            except ReproError as exc:
                if on_error == "raise":
                    raise
                item = DeleteItemResult(
                    position=position, name=name, error=str(exc)
                )
            else:
                item = DeleteItemResult(position=position, name=name)
            results.append(item)
            if progress is not None:
                progress(len(results), len(names), item)
            if item.ok:
                triggered = self.maybe_collect()
                if triggered is not None:
                    gc_reports.append(triggered)
                if self.maybe_checkpoint():
                    checkpoints += 1

        seconds_after = self.clock.now if self.clock else 0.0
        return MaintenanceReport(
            results=tuple(results),
            gc_reports=tuple(gc_reports),
            repo_bytes_before=bytes_before,
            repo_bytes_after=self.repo.total_bytes(),
            reclaimable_after=self.repo.reclaimable_bytes(),
            simulated_seconds=seconds_after - seconds_before,
            checkpoints=checkpoints,
        )
