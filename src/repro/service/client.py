"""Remote client for the image server (DESIGN.md §13).

A thin, typed veneer over the wire protocol: one TCP connection, one
request/response in flight at a time (concurrency is the *server's*
job — a process wanting parallel requests opens parallel clients, which
is exactly what the stress suites and the traffic benchmark do).  Error
responses come back as the same typed exceptions the local library
raises — ``except QuotaExceededError:`` works identically against a
local :class:`~repro.core.system.Expelliarmus` and a remote daemon,
which is what lets the CLI share its rendering code between the two
modes.
"""

from __future__ import annotations

import socket

from repro.errors import ProtocolError
from repro.service.protocol import (
    exception_from_payload,
    make_request,
    recv_message,
    send_message,
)

__all__ = ["RemoteClient", "parse_endpoint"]


def parse_endpoint(spec: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the ``--remote`` flag's format).

    Raises:
        ProtocolError: missing colon or a non-numeric port.
    """
    host, sep, port_s = spec.rpartition(":")
    if not sep or not host:
        raise ProtocolError(
            f"invalid endpoint {spec!r}: expected HOST:PORT"
        )
    try:
        port = int(port_s)
    except ValueError as exc:
        raise ProtocolError(
            f"invalid endpoint {spec!r}: port {port_s!r} is not a "
            "number"
        ) from exc
    if not 0 < port < 65536:
        raise ProtocolError(
            f"invalid endpoint {spec!r}: port out of range"
        )
    return host, port


class RemoteClient:
    """One connection to an image server, acting as one tenant."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: float | None = 30.0,
    ) -> None:
        """Connects eagerly — a bad endpoint fails here, not on the
        first request.

        Raises:
            OSError: nothing is listening at ``host:port``.
        """
        self.host = host
        self.port = port
        self.tenant = tenant
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )

    @classmethod
    def connect(
        cls,
        endpoint: str,
        *,
        tenant: str = "default",
        timeout: float | None = 30.0,
    ) -> "RemoteClient":
        """Connect to a ``HOST:PORT`` endpoint string."""
        host, port = parse_endpoint(endpoint)
        return cls(host, port, tenant=tenant, timeout=timeout)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the request loop
    # ------------------------------------------------------------------

    def call(
        self, op: str, *, tenant: str | None = None, **args
    ) -> dict:
        """One request/response round trip; returns the result object.

        ``tenant`` defaults to the client's own; pass it explicitly to
        act as another tenant (admin tooling) or rely on the default.

        Raises:
            ReproError: the typed exception the server's error code
                maps to (:func:`~repro.service.protocol.
                exception_from_payload`) — admission rejections, quota
                errors, not-found, protocol violations, or
                :class:`~repro.errors.RemoteError` for the rest.
            ProtocolError: the server hung up mid-response.
        """
        message = make_request(
            op, tenant=tenant or self.tenant, **args
        )
        send_message(self._sock, message)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError(
                f"server closed the connection before answering "
                f"{op!r} (it may be draining)"
            )
        if response.get("ok"):
            result = response.get("result")
            if not isinstance(result, dict):
                raise ProtocolError(
                    "malformed ok-response: missing result object"
                )
            return result
        error = response.get("error")
        if not isinstance(error, dict):
            raise ProtocolError(
                "malformed error-response: missing error object"
            )
        raise exception_from_payload(error)

    # ------------------------------------------------------------------
    # convenience methods (one per op)
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def publish(self, source: dict, item) -> dict:
        """Publish one corpus item into the tenant's namespace."""
        return self.call("publish", source=source, item=item)

    def publish_many(self, source: dict, items: list) -> dict:
        """Publish a batch; per-item failures are isolated."""
        return self.call(
            "publish-many", source=source, items=list(items)
        )

    def retrieve(self, name: str) -> dict:
        """Retrieve one of the tenant's images (manifest digest,
        simulated seconds, component breakdown)."""
        return self.call("retrieve", name=name)

    def retrieve_many(self, names: list | None = None) -> dict:
        """Retrieve a batch; ``None`` = every image the tenant has."""
        return self.call(
            "retrieve-many",
            names=None if names is None else list(names),
        )

    def delete(self, name: str) -> dict:
        """Unpublish one of the tenant's images."""
        return self.call("delete", name=name)

    def delete_many(self, names: list) -> dict:
        return self.call("delete-many", names=list(names))

    def gc(self, *, full: bool = False) -> dict:
        """Run garbage collection on the server's repository."""
        return self.call("gc", full=full)

    def fsck(self) -> dict:
        """Run the server-side consistency checks."""
        return self.call("fsck")

    def stats(self) -> dict:
        """Repository, tenant and server-level counters."""
        return self.call("stats")

    def checkpoint(self) -> dict:
        """Ask a workspace-backed server to checkpoint now."""
        return self.call("checkpoint")

    def shutdown(self) -> dict:
        """Ask the server to drain and exit gracefully."""
        return self.call("shutdown")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RemoteClient {self.host}:{self.port} "
            f"tenant={self.tenant!r}>"
        )
