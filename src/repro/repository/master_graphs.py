"""VMI master graphs (Section III-H).

A master graph represents *all* published VMIs that share one stored
base image: the base-image subgraph plus the union of their primary
package subgraphs.  Its purpose is performance — a new upload is
compared against one master graph instead of against every stored VMI —
and correctness: the invariant is that the base subgraph is semantically
compatible (``comp = 1``) with every member primary subgraph.

Master graphs are keyed by the *stored base image* (its blob key), not
merely by the attribute quadruple: Algorithm 2 explicitly iterates
multiple stored base images with identical ``(T, D, V, A)`` and merges
their master graphs when one base can replace the others.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import GraphModelError
from repro.model.attributes import BaseImageAttrs
from repro.model.graph import PackageRole, SemanticGraph
from repro.model.package import Package
from repro.model.vmi import BaseImage
from repro.similarity.compatibility import is_compatible

__all__ = ["MasterGraph", "base_subgraph_of"]

#: process-wide revision source for :attr:`MasterGraph.revision`
_REVISIONS = itertools.count(1)


def base_subgraph_of(base: BaseImage) -> SemanticGraph:
    """Build ``GI[BI]`` for a stored base image.

    Vertices: the base-image vertex plus every OS package; edges: the
    Depends relation restricted to the base population.
    """
    g = SemanticGraph()
    g.add_base_image(base.attrs)
    keys: dict[str, str] = {}
    for pkg in base.packages:
        keys[pkg.name] = g.add_package(pkg, PackageRole.BASE_MEMBER)
    for pkg in base.packages:
        for dep in pkg.dependency_names():
            if dep in keys:
                g.add_dependency_edge(keys[pkg.name], keys[dep])
    return g


@dataclass
class MasterGraph:
    """One stored base image plus the union of member package subgraphs."""

    base: BaseImage
    base_subgraph: SemanticGraph
    package_graph: SemanticGraph = field(default_factory=SemanticGraph)
    #: names of VMIs whose primary subgraphs were merged in
    member_vmis: list[str] = field(default_factory=list)
    #: advanced on every membership mutation, drawn from a process-wide
    #: monotonic counter so ``(base_key, revision)`` never names two
    #: different membership states — even across GC rebuilds, which
    #: start a fresh MasterGraph object for an existing base.  Derived
    #: results (extracted member subgraphs, compatibility verdicts) are
    #: cached under this pair and invalidate when members change.
    revision: int = 0

    @classmethod
    def for_base(cls, base: BaseImage) -> "MasterGraph":
        return cls(base=base, base_subgraph=base_subgraph_of(base))

    @property
    def attrs(self) -> BaseImageAttrs:
        return self.base.attrs

    @property
    def base_key(self) -> int:
        return self.base.blob_key()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_primary_subgraph(
        self, subgraph: SemanticGraph, vmi_name: str | None = None
    ) -> None:
        """Union a primary package subgraph in (Algorithm 1 line 21).

        Raises:
            GraphModelError: if the subgraph is not semantically
                compatible with the base — the master-graph invariant of
                Section III-H would break.
        """
        if not is_compatible(self.base_subgraph, subgraph):
            raise GraphModelError(
                "primary subgraph is incompatible with master-graph base "
                f"{self.base.attrs}"
            )
        self.package_graph.union_update(subgraph)
        self.revision = next(_REVISIONS)
        if vmi_name is not None and vmi_name not in self.member_vmis:
            self.member_vmis.append(vmi_name)

    def merge_from(self, other: "MasterGraph") -> None:
        """Absorb another master graph's packages (base replacement).

        Used by Algorithm 1 lines 22-27: when Algorithm 2 decides this
        master's base can replace ``other``'s base, every primary
        subgraph of ``other`` migrates here.

        Raises:
            GraphModelError: if any migrated primary subgraph is
                incompatible with this base (Algorithm 2 guarantees it
                never is; the check guards the invariant anyway).
        """
        for pkg in other.primary_packages():
            sub = other.extract_primary_subgraph(
                pkg.name, str(pkg.version)
            )
            self.add_primary_subgraph(sub)
        for name in other.member_vmis:
            if name not in self.member_vmis:
                self.member_vmis.append(name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def primary_packages(self) -> list[Package]:
        """All primary packages merged into this master graph."""
        return self.package_graph.primary_packages()

    def extract_primary_subgraph(
        self, name: str, version: str | None = None
    ) -> SemanticGraph:
        """``GI[P]`` of one member primary (Algorithm 2 line 9).

        ``version`` disambiguates when several versions of the primary
        were published over time (defaults to the newest).
        """
        return self.package_graph.extract_package_subgraph(name, version)

    def full_graph(self) -> SemanticGraph:
        """Base subgraph ∪ package graph — ``GM`` as Section III-H."""
        g = self.base_subgraph.copy()
        g.union_update(self.package_graph)
        return g

    def has_package(self, name: str) -> bool:
        return self.package_graph.has_package(name)

    def find_package(self, name: str) -> Package | None:
        """A package by name, checking members first, then the base."""
        pkg = self.package_graph.find_package(name)
        if pkg is None:
            pkg = self.base.find_package(name)
        return pkg

    def check_invariant(self) -> bool:
        """Is every member primary subgraph compatible with the base?"""
        return all(
            is_compatible(
                self.base_subgraph,
                self.extract_primary_subgraph(p.name, str(p.version)),
            )
            for p in self.primary_packages()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MasterGraph base={self.base.attrs} "
            f"primaries={len(self.primary_packages())} "
            f"members={len(self.member_vmis)}>"
        )
