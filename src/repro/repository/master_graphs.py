"""VMI master graphs (Section III-H).

A master graph represents *all* published VMIs that share one stored
base image: the base-image subgraph plus the union of their primary
package subgraphs.  Its purpose is performance — a new upload is
compared against one master graph instead of against every stored VMI —
and correctness: the invariant is that the base subgraph is semantically
compatible (``comp = 1``) with every member primary subgraph.

Master graphs are keyed by the *stored base image* (its blob key), not
merely by the attribute quadruple: Algorithm 2 explicitly iterates
multiple stored base images with identical ``(T, D, V, A)`` and merges
their master graphs when one base can replace the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphModelError
from repro.model.attributes import BaseImageAttrs
from repro.model.graph import PackageRole, SemanticGraph
from repro.model.package import Package
from repro.model.vmi import BaseImage
from repro.similarity.compatibility import is_compatible

__all__ = [
    "MasterGraph",
    "base_subgraph_of",
    "ensure_revision_floor",
    "master_state",
    "master_from_state",
]


class _RevisionSource:
    """Process-wide monotonic source for :attr:`MasterGraph.revision`.

    ``(base_key, revision)`` must never name two different membership
    states — including across snapshot reloads, where restored masters
    carry revisions issued by an *earlier* process.  Restoring code
    raises the floor past the highest restored revision so freshly
    issued revisions can never collide with restored ones.
    """

    def __init__(self) -> None:
        self._last = 0

    def advance(self) -> int:
        self._last += 1
        return self._last

    def ensure_floor(self, floor: int) -> None:
        self._last = max(self._last, floor)


_REVISIONS = _RevisionSource()


def ensure_revision_floor(floor: int) -> None:
    """Guarantee future revisions exceed ``floor`` (snapshot restore)."""
    _REVISIONS.ensure_floor(floor)


def master_state(master: "MasterGraph") -> dict:
    """A master's reload-relevant content as plain data.

    Everything a snapshot or op-log entry must carry that cannot be
    re-derived from the stored base alone: the merged package graph,
    the member list, and the membership revision.  The values are the
    *live* objects — consumers that persist the state must serialise
    eagerly (the repository journal contract).
    """
    return {
        "base_key": master.base_key,
        "package_graph": master.package_graph,
        "member_vmis": list(master.member_vmis),
        "revision": master.revision,
    }


def master_from_state(base: BaseImage, state: dict) -> "MasterGraph":
    """Rebuild a master graph around a stored base from saved state.

    Restores the saved membership revision exactly — a reloaded plan
    cache revalidates against the same ``(base_key, revision)`` pair it
    was derived under — and raises the process-wide revision floor so
    post-reload mutations can never reissue a restored revision for
    different membership.  Legacy state without a revision (snapshot
    format v1) restores at revision 0.
    """
    master = MasterGraph.for_base(base)
    master.package_graph = state["package_graph"]
    master.invalidate_fingerprints()
    master.member_vmis = list(state["member_vmis"])
    master.revision = state.get("revision", 0)
    ensure_revision_floor(master.revision)
    return master


def base_subgraph_of(base: BaseImage) -> SemanticGraph:
    """Build ``GI[BI]`` for a stored base image.

    Vertices: the base-image vertex plus every OS package; edges: the
    Depends relation restricted to the base population.
    """
    g = SemanticGraph()
    g.add_base_image(base.attrs)
    keys: dict[str, str] = {}
    for pkg in base.packages:
        keys[pkg.name] = g.add_package(pkg, PackageRole.BASE_MEMBER)
    for pkg in base.packages:
        for dep in pkg.dependency_names():
            if dep in keys:
                g.add_dependency_edge(keys[pkg.name], keys[dep])
    return g


@dataclass
class MasterGraph:
    """One stored base image plus the union of member package subgraphs."""

    base: BaseImage
    base_subgraph: SemanticGraph
    package_graph: SemanticGraph = field(default_factory=SemanticGraph)
    #: names of VMIs whose primary subgraphs were merged in
    member_vmis: list[str] = field(default_factory=list)
    #: advanced on every membership mutation, drawn from a process-wide
    #: monotonic counter so ``(base_key, revision)`` never names two
    #: different membership states — even across GC rebuilds, which
    #: start a fresh MasterGraph object for an existing base.  Derived
    #: results (extracted member subgraphs, compatibility verdicts) are
    #: cached under this pair and invalidate when members change.
    revision: int = 0
    #: package-population fingerprint: name -> every package vertex of
    #: ``package_graph`` bearing that name, in vertex insertion order.
    #: Maintained incrementally by :meth:`add_primary_subgraph`, built
    #: lazily on objects whose ``package_graph`` was assigned directly
    #: (snapshot restore).  Backs the O(shared-names) compatibility
    #: check of Algorithm 2 — see :meth:`package_population`.
    _population: dict[str, list[Package]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: incrementally maintained ``{p.name: p}`` over ``full_graph()``
    #: iteration order — the exact map ``SimG`` consumes, without the
    #: per-comparison copy+union.  See :meth:`full_package_map`.
    _full_map: dict[str, Package] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: ``len(package_graph)`` when the fingerprints were last synced;
    #: a mismatch means someone mutated the graph without going through
    #: :meth:`add_primary_subgraph` (tests poking internals, restores),
    #: and the maps rebuild lazily.  Vertices are never removed in
    #: place, so the node count detects every population change.
    _fingerprint_nodes: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    @classmethod
    def for_base(cls, base: BaseImage) -> "MasterGraph":
        return cls(base=base, base_subgraph=base_subgraph_of(base))

    @property
    def attrs(self) -> BaseImageAttrs:
        return self.base.attrs

    @property
    def base_key(self) -> int:
        return self.base.blob_key()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_primary_subgraph(
        self, subgraph: SemanticGraph, vmi_name: str | None = None
    ) -> None:
        """Union a primary package subgraph in (Algorithm 1 line 21).

        Raises:
            GraphModelError: if the subgraph is not semantically
                compatible with the base — the master-graph invariant of
                Section III-H would break.
        """
        if not is_compatible(self.base_subgraph, subgraph):
            raise GraphModelError(
                "primary subgraph is incompatible with master-graph base "
                f"{self.base.attrs}"
            )
        self._sync_fingerprints()
        fresh: list[Package] | None = None
        if self._population is not None or self._full_map is not None:
            # packages the union is about to add as new vertices, in the
            # subgraph's iteration order — exactly how union_update adds
            # them, so the incremental fingerprints mirror a from-scratch
            # rebuild bit for bit
            pg = self.package_graph
            fresh = [
                p
                for p in subgraph.packages()
                if pg.package_key(p) not in pg
            ]
        self.package_graph.union_update(subgraph)
        if fresh:
            base_g = self.base_subgraph
            for pkg in fresh:
                if self._population is not None:
                    self._population.setdefault(pkg.name, []).append(pkg)
                if self._full_map is not None and (
                    base_g.package_key(pkg) not in base_g
                ):
                    # a vertex the base already provides adds no node to
                    # full_graph(), so it cannot shift the name→package
                    # map either
                    self._full_map[pkg.name] = pkg
        self._fingerprint_nodes = len(self.package_graph)
        self.revision = _REVISIONS.advance()
        if vmi_name is not None and vmi_name not in self.member_vmis:
            self.member_vmis.append(vmi_name)

    def merge_from(self, other: "MasterGraph") -> None:
        """Absorb another master graph's packages (base replacement).

        Used by Algorithm 1 lines 22-27: when Algorithm 2 decides this
        master's base can replace ``other``'s base, every primary
        subgraph of ``other`` migrates here.

        Raises:
            GraphModelError: if any migrated primary subgraph is
                incompatible with this base (Algorithm 2 guarantees it
                never is; the check guards the invariant anyway).
        """
        for pkg in other.primary_packages():
            sub = other.extract_primary_subgraph(
                pkg.name, str(pkg.version)
            )
            self.add_primary_subgraph(sub)
        for name in other.member_vmis:
            if name not in self.member_vmis:
                self.member_vmis.append(name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def primary_packages(self) -> list[Package]:
        """All primary packages merged into this master graph."""
        return self.package_graph.primary_packages()

    def extract_primary_subgraph(
        self, name: str, version: str | None = None
    ) -> SemanticGraph:
        """``GI[P]`` of one member primary (Algorithm 2 line 9).

        ``version`` disambiguates when several versions of the primary
        were published over time (defaults to the newest).
        """
        return self.package_graph.extract_package_subgraph(name, version)

    def full_graph(self) -> SemanticGraph:
        """Base subgraph ∪ package graph — ``GM`` as Section III-H."""
        g = self.base_subgraph.copy()
        g.union_update(self.package_graph)
        return g

    # ------------------------------------------------------------------
    # fingerprints (profile-driven publish fast paths)
    # ------------------------------------------------------------------

    def _sync_fingerprints(self) -> None:
        """Drop the maps if the package graph changed behind our back."""
        nodes = len(self.package_graph)
        if nodes != self._fingerprint_nodes:
            self._population = None
            self._full_map = None
            self._fingerprint_nodes = nodes

    def package_population(self) -> dict[str, list[Package]]:
        """Name → all package vertices of the merged package graph.

        Because every vertex of ``package_graph`` entered through some
        member's primary subgraph and dependency closures only ever
        grow, the union of the current members' subgraph populations is
        exactly this vertex set.  Algorithm 2's replaceability test —
        "is base X compatible with *every* member subgraph of Y" —
        therefore reduces to checking X against this aggregate
        population, with no per-member subgraph extraction at all
        (see :meth:`SelectionMemo.can_replace`).  Treat as read-only.
        """
        self._sync_fingerprints()
        if self._population is None:
            population: dict[str, list[Package]] = {}
            for pkg in self.package_graph.packages():
                population.setdefault(pkg.name, []).append(pkg)
            self._population = population
        return self._population

    def full_package_map(self) -> dict[str, Package]:
        """``{p.name: p for p in full_graph().packages()}``, maintained
        incrementally.

        ``SimG`` reads a graph only through this map (plus base attrs),
        so the analyzer can score an upload against a master without
        materialising the copy+union ``full_graph()`` builds.  Treat as
        read-only.
        """
        self._sync_fingerprints()
        if self._full_map is None:
            full_map = {
                p.name: p for p in self.base_subgraph.packages()
            }
            base_g = self.base_subgraph
            for pkg in self.package_graph.packages():
                if base_g.package_key(pkg) not in base_g:
                    full_map[pkg.name] = pkg
            self._full_map = full_map
        return self._full_map

    def invalidate_fingerprints(self) -> None:
        """Drop the lazily maintained maps (direct graph replacement)."""
        self._population = None
        self._full_map = None
        self._fingerprint_nodes = -1

    def has_package(self, name: str) -> bool:
        return name in self.package_population()

    def find_package(self, name: str) -> Package | None:
        """A package by name, checking members first, then the base."""
        hits = self.package_population().get(name)
        if hits:
            # graph iteration finds the earliest-inserted vertex first
            return hits[0]
        return self.base.find_package(name)

    def check_invariant(self) -> bool:
        """Is every member primary subgraph compatible with the base?"""
        return all(
            is_compatible(
                self.base_subgraph,
                self.extract_primary_subgraph(p.name, str(p.version)),
            )
            for p in self.primary_packages()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MasterGraph base={self.base.attrs} "
            f"primaries={len(self.primary_packages())} "
            f"members={len(self.member_vmis)}>"
        )
