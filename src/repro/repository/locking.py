"""Repository locking — the concurrency core (DESIGN.md §12).

One :class:`RepositoryLock` guards one :class:`~repro.repository.repo.
Repository`: a reentrant reader-writer lock giving the coarse
transaction model the parallel service layer builds on —

* **writes are exclusive.**  A state-changing operation (a whole
  publish, delete, GC pass — not a single primitive) runs under
  :meth:`RepositoryLock.write`, so the repository only ever moves
  between operation boundaries.  Because the write lock also covers the
  operation's journal appends, op-log order equals application order
  and crash replay stays deterministic under parallel execution.
* **reads are shared.**  Retrievals and other read-only operations run
  under :meth:`RepositoryLock.read` and overlap freely with each other;
  a waiting writer blocks *new* readers (write preference), so a read
  storm cannot starve publishes.
* **reentrant.**  A thread may nest write-in-write, read-in-read and
  read-inside-write acquisitions arbitrarily — the repository's own
  primitives take the write lock themselves, so an executor holding the
  operation-level lock pays only a depth increment per primitive.
  Read→write *upgrades* are refused (two upgrading readers would
  deadlock each other): acquire the write lock first.
* **bounded waiting.**  Every acquisition takes an optional timeout;
  expiry raises :class:`~repro.errors.LockTimeoutError`, the
  repository-error subclass operators can catch to back off instead of
  hanging a service thread forever.

The lock is deliberately *coarse*: the paper's repository is a single
SQLite-plus-blobstore node, and one exclusive writer matches both its
consistency model and SQLite's own write serialization.  Parallel
throughput comes from overlapping the simulated I/O of independent
shards (see :mod:`repro.service.parallel`), not from interleaving
mutations — which is exactly how the differential suite can demand
parallel ≡ sequential, byte for byte.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import monotonic
from typing import Iterator

from repro.errors import LockTimeoutError

__all__ = ["RepositoryLock"]


class RepositoryLock:
    """Reentrant reader-writer lock with write preference and timeouts."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: ident of the thread holding the write lock, None when free
        self._writer: int | None = None
        self._write_depth = 0
        #: per-thread read depth (readers may nest their own reads)
        self._readers: dict[int, int] = {}
        #: threads blocked in acquire_write — new readers hold back
        self._waiting_writers = 0

    # ------------------------------------------------------------------
    # probes (tests and assertions)
    # ------------------------------------------------------------------

    @property
    def write_held(self) -> bool:
        """Is the write lock held by the *calling* thread?"""
        return self._writer == threading.get_ident()

    @property
    def active_readers(self) -> int:
        """Distinct threads currently holding read access."""
        with self._cond:
            return len(self._readers)

    # ------------------------------------------------------------------
    # acquisition / release
    # ------------------------------------------------------------------

    def _wait(self, deadline: float | None) -> bool:
        """One bounded wait on the condition; False when time is up."""
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - monotonic()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return True

    def acquire_read(self, timeout: float | None = None) -> None:
        """Take shared access; blocks while a writer runs or waits.

        Raises:
            LockTimeoutError: the lock stayed unavailable for
                ``timeout`` seconds.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # reentrant: nested read, or read inside the held write
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            deadline = None if timeout is None else monotonic() + timeout
            while self._writer is not None or self._waiting_writers:
                if not self._wait(deadline):
                    raise LockTimeoutError("read", timeout)
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me, 0)
            if depth == 0:
                raise RuntimeError(
                    "release_read without a held read lock"
                )
            if depth == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    def acquire_write(self, timeout: float | None = None) -> None:
        """Take exclusive access; blocks while anyone else holds the lock.

        Raises:
            LockTimeoutError: the lock stayed unavailable for
                ``timeout`` seconds.
            RuntimeError: the calling thread holds a *read* lock — an
                upgrade would deadlock against any other upgrader, so
                it is refused outright.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read->write upgrade is not supported: release "
                    "the read lock (or take the write lock first)"
                )
            deadline = None if timeout is None else monotonic() + timeout
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    if not self._wait(deadline):
                        raise LockTimeoutError("write", timeout)
                self._writer = me
                self._write_depth = 1
            finally:
                self._waiting_writers -= 1
                # a timed-out writer must not leave readers parked
                # behind a waiting-writers count that just dropped
                self._cond.notify_all()

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError(
                    "release_write by a thread not holding the write lock"
                )
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # context managers — the API everything programs against
    # ------------------------------------------------------------------

    @contextmanager
    def read(self, timeout: float | None = None) -> Iterator[None]:
        """Shared access for the ``with`` block."""
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self, timeout: float | None = None) -> Iterator[None]:
        """Exclusive access for the ``with`` block."""
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RepositoryLock writer={self._writer} "
            f"readers={len(self._readers)} "
            f"waiting_writers={self._waiting_writers}>"
        )
