"""SQLite metadata database.

The paper keeps VMI metadata in SQLite (Section VI-A).  The schema below
mirrors Figure 2's "VMI DATABASE" boxes — base images, VMIs and software
packages — plus the join table mapping a published VMI to its primary
packages.  The semantic graphs themselves live in memory (networkx); the
database is the durable index the algorithms query by name.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import DuplicateEntryError, NotInRepositoryError

__all__ = ["MetadataDatabase", "PackageRow", "VMIRow", "BaseImageRow"]

_SCHEMA = """
CREATE TABLE base_images (
    blob_key   INTEGER PRIMARY KEY,
    os_type    TEXT NOT NULL,
    distro     TEXT NOT NULL,
    version    TEXT NOT NULL,
    arch       TEXT NOT NULL,
    size       INTEGER NOT NULL,
    n_packages INTEGER NOT NULL
);
CREATE TABLE packages (
    blob_key  INTEGER PRIMARY KEY,
    name      TEXT NOT NULL,
    version   TEXT NOT NULL,
    arch      TEXT NOT NULL,
    deb_size  INTEGER NOT NULL,
    installed_size INTEGER NOT NULL
);
CREATE INDEX idx_packages_name ON packages (name);
CREATE INDEX idx_base_images_attrs
    ON base_images (os_type, distro, version, arch);
CREATE TABLE vmis (
    name       TEXT PRIMARY KEY,
    base_key   INTEGER NOT NULL,
    data_label TEXT,
    seq        INTEGER NOT NULL
);
CREATE INDEX idx_vmis_base ON vmis (base_key);
CREATE TABLE vmi_packages (
    vmi_name TEXT NOT NULL,
    pkg_key  INTEGER NOT NULL,
    PRIMARY KEY (vmi_name, pkg_key)
);
"""


@dataclass(frozen=True)
class BaseImageRow:
    blob_key: int
    os_type: str
    distro: str
    version: str
    arch: str
    size: int
    n_packages: int


@dataclass(frozen=True)
class PackageRow:
    blob_key: int
    name: str
    version: str
    arch: str
    deb_size: int
    installed_size: int


@dataclass(frozen=True)
class VMIRow:
    name: str
    base_key: int
    data_label: str | None
    seq: int


class MetadataDatabase:
    """Thin typed layer over the SQLite schema above."""

    def __init__(self, path: str = ":memory:") -> None:
        # check_same_thread=False: the parallel service executors reach
        # this connection from pool threads, always serialized by the
        # repository lock (writes exclusive, reads against a quiescent
        # writer side) — the cross-thread handoff SQLite's default
        # check exists to catch cannot interleave statements here
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        self._seq = 0
        #: open :meth:`batch` scopes; while > 0, per-statement commits
        #: are deferred to the outermost scope exit.  Guarded by its own
        #: mutex because concurrent publish shards may nest batches from
        #: several pool threads (statements themselves stay serialized
        #: by the repository lock).
        self._batch_depth = 0
        self._batch_mutex = threading.Lock()

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    # transaction batching
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        """Commit now, unless a batch scope is deferring commits."""
        with self._batch_mutex:
            if self._batch_depth > 0:
                return
        self._conn.commit()

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Defer per-statement commits to one commit at scope exit.

        Batch publish otherwise pays one SQLite transaction round-trip
        per inserted row; under a batch scope the implicit transaction
        sqlite3 opens on the first DML statement stays open across the
        whole pipeline and commits once.  Scopes nest (and may overlap
        across threads): the last scope to close performs the commit.
        Durability is unaffected — the metadata database is an index
        rebuilt from the write-ahead op-log, never the recovery source.
        """
        with self._batch_mutex:
            self._batch_depth += 1
        try:
            yield
        finally:
            with self._batch_mutex:
                self._batch_depth -= 1
                outermost = self._batch_depth == 0
            if outermost:
                self._conn.commit()

    # ------------------------------------------------------------------
    # base images
    # ------------------------------------------------------------------

    def insert_base_image(self, row: BaseImageRow) -> None:
        try:
            self._conn.execute(
                "INSERT INTO base_images VALUES (?,?,?,?,?,?,?)",
                (
                    _signed(row.blob_key),
                    row.os_type,
                    row.distro,
                    row.version,
                    row.arch,
                    row.size,
                    row.n_packages,
                ),
            )
        except sqlite3.IntegrityError:
            raise DuplicateEntryError(
                f"base image {row.blob_key:#x} already indexed"
            ) from None
        self._commit()

    def delete_base_image(self, blob_key: int) -> None:
        cur = self._conn.execute(
            "DELETE FROM base_images WHERE blob_key = ?",
            (_signed(blob_key),),
        )
        if cur.rowcount == 0:
            raise NotInRepositoryError("base image", blob_key)
        self._commit()

    def base_images(self) -> list[BaseImageRow]:
        rows = self._conn.execute(
            "SELECT blob_key, os_type, distro, version, arch, size,"
            " n_packages FROM base_images ORDER BY rowid"
        ).fetchall()
        return [BaseImageRow(_unsigned(r[0]), *r[1:]) for r in rows]

    def base_images_with_attrs(
        self,
        os_type: str,
        distro: str,
        version: str | None = None,
        arch: str | None = None,
    ) -> list[BaseImageRow]:
        """Stored bases matching an attribute quadruple prefix, exactly.

        Served by ``idx_base_images_attrs``, so candidate generation
        touches only the matching rows instead of the full table.
        ``version`` / ``arch`` narrow the prefix when given.  Matching
        here is exact string equality; the graded ``simBI = 1`` classes
        (portable ``"all"`` arch, equivalent release spellings) are the
        repository facade's concern.
        """
        sql = (
            "SELECT blob_key, os_type, distro, version, arch, size,"
            " n_packages FROM base_images WHERE os_type = ? AND distro = ?"
        )
        args: list[object] = [os_type, distro]
        if version is not None:
            sql += " AND version = ?"
            args.append(version)
        if arch is not None:
            sql += " AND arch = ?"
            args.append(arch)
        sql += " ORDER BY rowid"
        rows = self._conn.execute(sql, args).fetchall()
        return [BaseImageRow(_unsigned(r[0]), *r[1:]) for r in rows]

    def base_image_count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM base_images"
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # packages
    # ------------------------------------------------------------------

    def insert_package(self, row: PackageRow) -> None:
        try:
            self._conn.execute(
                "INSERT INTO packages VALUES (?,?,?,?,?,?)",
                (
                    _signed(row.blob_key),
                    row.name,
                    row.version,
                    row.arch,
                    row.deb_size,
                    row.installed_size,
                ),
            )
        except sqlite3.IntegrityError:
            raise DuplicateEntryError(
                f"package {row.name} {row.version} already indexed"
            ) from None
        self._commit()

    def has_package(self, blob_key: int) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM packages WHERE blob_key = ?",
            (_signed(blob_key),),
        ).fetchone()
        return row is not None

    def packages_named(self, name: str) -> list[PackageRow]:
        rows = self._conn.execute(
            "SELECT blob_key, name, version, arch, deb_size,"
            " installed_size FROM packages WHERE name = ?",
            (name,),
        ).fetchall()
        return [PackageRow(_unsigned(r[0]), *r[1:]) for r in rows]

    def all_packages(self) -> list[PackageRow]:
        rows = self._conn.execute(
            "SELECT blob_key, name, version, arch, deb_size,"
            " installed_size FROM packages"
        ).fetchall()
        return [PackageRow(_unsigned(r[0]), *r[1:]) for r in rows]

    def package_count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM packages"
        ).fetchone()[0]

    # ------------------------------------------------------------------
    # VMIs
    # ------------------------------------------------------------------

    def insert_vmi(
        self, name: str, base_key: int, data_label: str | None,
        package_keys: list[int],
    ) -> VMIRow:
        self._seq += 1
        try:
            self._conn.execute(
                "INSERT INTO vmis VALUES (?,?,?,?)",
                (name, _signed(base_key), data_label, self._seq),
            )
        except sqlite3.IntegrityError:
            raise DuplicateEntryError(
                f"VMI {name!r} already published"
            ) from None
        self._conn.executemany(
            "INSERT OR IGNORE INTO vmi_packages VALUES (?,?)",
            [(name, _signed(k)) for k in package_keys],
        )
        self._commit()
        return VMIRow(name, base_key, data_label, self._seq)

    def update_vmi_base(self, name: str, base_key: int) -> None:
        """Re-point a VMI at a replacement base image (Algorithm 2)."""
        cur = self._conn.execute(
            "UPDATE vmis SET base_key = ? WHERE name = ?",
            (_signed(base_key), name),
        )
        if cur.rowcount == 0:
            raise NotInRepositoryError("VMI", name)
        self._commit()

    def get_vmi(self, name: str) -> VMIRow:
        row = self._conn.execute(
            "SELECT name, base_key, data_label, seq FROM vmis"
            " WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise NotInRepositoryError("VMI", name)
        return VMIRow(row[0], _unsigned(row[1]), row[2], row[3])

    def vmis(self) -> list[VMIRow]:
        rows = self._conn.execute(
            "SELECT name, base_key, data_label, seq FROM vmis ORDER BY seq"
        ).fetchall()
        return [VMIRow(r[0], _unsigned(r[1]), r[2], r[3]) for r in rows]

    def vmis_for_base(self, base_key: int) -> list[VMIRow]:
        """Published VMIs on one base, record order (``idx_vmis_base``).

        The incremental GC's per-base record lookup: work scales with
        the base's own family, not with the repository.
        """
        rows = self._conn.execute(
            "SELECT name, base_key, data_label, seq FROM vmis"
            " WHERE base_key = ? ORDER BY seq",
            (_signed(base_key),),
        ).fetchall()
        return [VMIRow(r[0], _unsigned(r[1]), r[2], r[3]) for r in rows]

    def delete_vmi(self, name: str) -> None:
        cur = self._conn.execute(
            "DELETE FROM vmis WHERE name = ?", (name,)
        )
        if cur.rowcount == 0:
            raise NotInRepositoryError("VMI", name)
        self._conn.execute(
            "DELETE FROM vmi_packages WHERE vmi_name = ?", (name,)
        )
        self._commit()

    def delete_package(self, blob_key: int) -> None:
        cur = self._conn.execute(
            "DELETE FROM packages WHERE blob_key = ?",
            (_signed(blob_key),),
        )
        if cur.rowcount == 0:
            raise NotInRepositoryError("package", blob_key)
        self._commit()

    def vmi_package_keys(self, name: str) -> list[int]:
        rows = self._conn.execute(
            "SELECT pkg_key FROM vmi_packages WHERE vmi_name = ?",
            (name,),
        ).fetchall()
        return [_unsigned(r[0]) for r in rows]

    def all_vmi_package_keys(self) -> dict[str, list[int]]:
        """Every VMI's join rows in one query (refcount rebuilds).

        One table scan instead of one indexed query per record — the
        full-GC verification anchor and fsck call this over the whole
        store.
        """
        rows = self._conn.execute(
            "SELECT vmi_name, pkg_key FROM vmi_packages"
        ).fetchall()
        grouped: dict[str, list[int]] = {}
        for name, key in rows:
            grouped.setdefault(name, []).append(_unsigned(key))
        return grouped

    def replace_vmi_packages(self, name: str, package_keys: list[int]) -> None:
        """Overwrite a VMI's package join rows (GC re-derivation)."""
        self._conn.execute(
            "DELETE FROM vmi_packages WHERE vmi_name = ?", (name,)
        )
        self._conn.executemany(
            "INSERT OR IGNORE INTO vmi_packages VALUES (?,?)",
            [(name, _signed(k)) for k in package_keys],
        )
        self._commit()


def _signed(key: int) -> int:
    """Map a uint64 content id into SQLite's signed 64-bit space."""
    return key - (1 << 64) if key >= (1 << 63) else key


def _unsigned(key: int) -> int:
    return key + (1 << 64) if key < 0 else key
