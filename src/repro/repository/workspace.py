"""Durable repository workspaces: snapshot + write-ahead op-log.

A *workspace* is a directory that makes one repository survive process
exits the way the paper's SQLite-on-SSD store does:

* ``snapshot.bin`` — the last checkpoint (snapshot format v2, exact
  round-trip: master revisions, mutation counter, dirty state);
* ``oplog.bin`` — the write-ahead journal of every repository primitive
  applied since that checkpoint.

Opening a workspace loads the snapshot, replays the op-log on top, and
re-attaches the journal — so reopen cost is O(ops since checkpoint),
not O(repository), and a process crash loses at most a torn tail
record (an operation whose journal entry never became durable, i.e. an
operation that never logically happened).

Checkpointing writes a fresh snapshot atomically (temp file +
``os.replace``) and *then* starts a fresh op-log.  The crash window
between the two leaves a snapshot newer than the log header; since no
operation can run inside that window, the stale log is provably
subsumed by the snapshot and is discarded on the next open.  Any other
snapshot/op-log disagreement is a real pairing error and raises
:class:`~repro.errors.WorkspaceError` instead of replaying garbage.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.errors import WorkspaceError
from repro.repository.oplog import OpLog, replay_ops
from repro.repository.persistence import repository_state, restore_into
from repro.repository.repo import Repository

__all__ = ["Workspace"]

_SNAPSHOT_NAME = "snapshot.bin"
_OPLOG_NAME = "oplog.bin"


class Workspace:
    """One durable repository rooted at a directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._repo: Repository | None = None
        self._oplog: OpLog | None = None
        #: ops replayed by the last :meth:`load` (reopen cost probe)
        self.replayed_ops = 0
        #: checkpoints written through this instance
        self.checkpoints_written = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.path / _SNAPSHOT_NAME

    @property
    def oplog_path(self) -> Path:
        return self.path / _OPLOG_NAME

    def is_initialized(self) -> bool:
        """Has this directory ever held a repository?"""
        return self.snapshot_path.exists() or self.oplog_path.exists()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def repo(self) -> Repository:
        """The loaded repository.

        Raises:
            WorkspaceError: :meth:`load` has not run.
        """
        if self._repo is None:
            raise WorkspaceError(f"workspace {self.path} is not loaded")
        return self._repo

    def load(self) -> Repository:
        """Open (or initialise) the workspace; returns its repository.

        Snapshot restore + op-log replay + journal re-attachment.  A
        fresh directory comes up as an empty repository with an empty
        journal — durability starts with the first operation.

        Raises:
            WorkspaceError: mismatched snapshot/op-log pair, or an
                unreadable op-log.
        """
        if self._repo is not None:
            return self._repo
        self.path.mkdir(parents=True, exist_ok=True)

        repo = Repository()
        if self.snapshot_path.exists():
            state = pickle.loads(self.snapshot_path.read_bytes())
            try:
                restore_into(repo, state)
            except ValueError as exc:
                raise WorkspaceError(
                    f"workspace {self.path}: {exc}"
                ) from exc

        self.replayed_ops = 0
        if self.oplog_path.exists():
            paired = OpLog.read_header(self.oplog_path)
            if paired == repo.mutations:
                oplog, scan = OpLog.open(self.oplog_path)
                self.replayed_ops = replay_ops(repo, scan.ops)
                self._oplog = oplog
            elif paired < repo.mutations:
                # crash between checkpoint's snapshot write and its
                # op-log reset: nothing ran in that window, so the
                # snapshot subsumes every logged op — start fresh
                self._oplog = OpLog.create(
                    self.oplog_path, snapshot_mutations=repo.mutations
                )
            else:
                raise WorkspaceError(
                    f"workspace {self.path}: op-log continues a "
                    f"snapshot at mutation {paired}, but the stored "
                    f"snapshot is at {repo.mutations} — not a "
                    "matching pair"
                )
        else:
            self._oplog = OpLog.create(
                self.oplog_path, snapshot_mutations=repo.mutations
            )

        repo.attach_journal(self._oplog)
        self._repo = repo
        return repo

    def adopt(self, repo: Repository) -> int:
        """Become durable storage for an existing in-memory repository.

        Writes the first checkpoint and journals the repository from
        now on; returns the snapshot bytes.  Refuses a directory that
        already holds a repository — adopting over one would silently
        discard it.

        Raises:
            WorkspaceError: the directory is already initialised, or
                this workspace already carries a repository.
        """
        if self._repo is not None:
            raise WorkspaceError(
                f"workspace {self.path} already carries a repository"
            )
        if self.is_initialized():
            raise WorkspaceError(
                f"workspace {self.path} already holds a repository — "
                "open it instead of adopting over it"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        self._repo = repo
        return self.checkpoint()

    def checkpoint(self) -> int:
        """Write a snapshot and truncate the op-log; returns its bytes.

        After a checkpoint the op-log is empty, so the next reopen
        pays pure snapshot-load cost.  The snapshot write is atomic
        (temp + rename); see the module docstring for the crash window
        between the write and the log reset.
        """
        repo = self.repo
        blob = pickle.dumps(
            repository_state(repo), protocol=pickle.HIGHEST_PROTOCOL
        )
        tmp = self.snapshot_path.with_suffix(".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, self.snapshot_path)
        if self._oplog is not None:
            self._oplog.close()
        self._oplog = OpLog.create(
            self.oplog_path, snapshot_mutations=repo.mutations
        )
        repo.attach_journal(self._oplog)
        self.checkpoints_written += 1
        return len(blob)

    @property
    def ops_since_checkpoint(self) -> int:
        """Journal length — the replay work a reopen would pay now."""
        return self._oplog.op_count if self._oplog is not None else 0

    def checkpoint_if_due(self, every_ops: int | None) -> bool:
        """Checkpoint when the journal reached ``every_ops`` entries.

        The single home of the op-count policy (the facade and the
        maintenance service both delegate here): bounds the replay
        work a reopen pays without re-snapshotting per operation.
        ``None`` disables it.
        """
        if every_ops is None:
            return False
        if self.ops_since_checkpoint < max(every_ops, 1):
            return False
        self.checkpoint()
        return True

    def close(self) -> None:
        """Detach the journal and close the op-log (state stays)."""
        if self._repo is not None:
            self._repo.detach_journal()
        if self._oplog is not None:
            self._oplog.close()
        self._repo = None
        self._oplog = None

    def __enter__(self) -> "Workspace":
        self.load()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Workspace {self.path} "
            f"ops_since_checkpoint={self.ops_since_checkpoint}>"
        )
