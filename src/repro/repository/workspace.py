"""Durable repository workspaces: snapshot + write-ahead op-log.

A *workspace* is a directory that makes one repository survive process
exits the way the paper's SQLite-on-SSD store does:

* ``snapshot.bin`` — the last checkpoint (snapshot format v2, exact
  round-trip: master revisions, mutation counter, dirty state);
* ``oplog.bin`` — the write-ahead journal of every repository primitive
  applied since that checkpoint.

Opening a workspace loads the snapshot, replays the op-log on top, and
re-attaches the journal — so reopen cost is O(ops since checkpoint),
not O(repository), and a process crash loses at most a torn tail
record (an operation whose journal entry never became durable, i.e. an
operation that never logically happened).

Checkpointing writes a fresh snapshot atomically (temp file +
``os.replace``) and *then* starts a fresh op-log.  The crash window
between the two leaves a snapshot newer than the log header; since no
operation can run inside that window, the stale log is provably
subsumed by the snapshot and is discarded on the next open.  Any other
snapshot/op-log disagreement is a real pairing error and raises
:class:`~repro.errors.WorkspaceError` instead of replaying garbage.

**Advisory locking.**  A workspace admits one live process at a time:
opening (or adopting into) a directory takes an exclusive
``flock(2)`` on its ``lock`` file and records the holder's pid in it
for diagnostics.  A second live process fails fast with
:class:`~repro.errors.WorkspaceLockedError` naming the holder — the
contract the CI workspace-roundtrip gate asserts — instead of
interleaving two journals over one op-log.  The kernel releases the
lock when its holder dies, so a crashed run can never wedge the store
and there is no stale-lock breaking to race on; a handle abandoned by
*this* process (a crash simulated without :meth:`Workspace.close`) is
closed — releasing its lock — when the process reopens the path.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.errors import WorkspaceError, WorkspaceLockedError
from repro.repository.oplog import OpLog, replay_ops
from repro.repository.persistence import repository_state, restore_into
from repro.repository.repo import Repository

__all__ = ["Workspace"]

_SNAPSHOT_NAME = "snapshot.bin"
_OPLOG_NAME = "oplog.bin"
_LOCK_NAME = "lock"

#: locks this process holds, keyed by resolved lock-file path, valued
#: ``(token, fd)`` — lets a later open of the same workspace break its
#: own *abandoned* handle (the crash-simulation idiom the restart
#: suites use) by closing the old fd, which releases its flock.  The
#: per-acquisition token lets the abandoned handle's own eventual
#: ``close()`` recognise it was taken over (fd numbers get reused, so
#: the fd alone could not)
_HELD_LOCKS: dict[str, tuple[object, int]] = {}


class Workspace:
    """One durable repository rooted at a directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._repo: Repository | None = None
        self._oplog: OpLog | None = None
        self._holds_lock = False
        self._lock_token: object | None = None
        #: ops replayed by the last :meth:`load` (reopen cost probe)
        self.replayed_ops = 0
        #: checkpoints written through this instance
        self.checkpoints_written = 0

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.path / _SNAPSHOT_NAME

    @property
    def oplog_path(self) -> Path:
        return self.path / _OPLOG_NAME

    @property
    def lock_path(self) -> Path:
        return self.path / _LOCK_NAME

    def is_initialized(self) -> bool:
        """Has this directory ever held a repository?"""
        return self.snapshot_path.exists() or self.oplog_path.exists()

    # ------------------------------------------------------------------
    # advisory cross-process locking
    # ------------------------------------------------------------------

    def lock_holder(self) -> int | None:
        """Pid recorded in the lock file, None when unlocked/unreadable."""
        try:
            return int(self.lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    @property
    def _lock_key(self) -> str:
        return str(self.lock_path.resolve())

    def _acquire_lock(self) -> None:
        """Claim the workspace for this process via ``flock``.

        The kernel owns liveness: a holder that exits or crashes drops
        its lock automatically, so there is no stale-lock detection to
        race on.  A handle this process itself abandoned (crash
        simulation) is closed first, releasing its lock.

        Raises:
            WorkspaceLockedError: another live process holds it.
        """
        abandoned = _HELD_LOCKS.pop(self._lock_key, None)
        if abandoned is not None:
            os.close(abandoned[1])
        fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                holder = self.lock_holder()
                os.close(fd)
                raise WorkspaceLockedError(self.path, holder or 0) from exc
        os.ftruncate(fd, 0)
        os.write(fd, f"{os.getpid()}\n".encode())
        self._lock_token = object()
        _HELD_LOCKS[self._lock_key] = (self._lock_token, fd)
        self._holds_lock = True

    def _release_lock(self) -> None:
        if not self._holds_lock:
            return
        self._holds_lock = False
        token = self._lock_token
        self._lock_token = None
        held = _HELD_LOCKS.get(self._lock_key)
        if held is None or held[0] is not token:
            # an abandoned handle this process already took over (and
            # whose fd it already closed) — nothing left to release
            return
        del _HELD_LOCKS[self._lock_key]
        # empty the diagnostics pid before the flock drops, so
        # lock_holder() reads None the instant we are out; the file
        # itself stays (unlinking a contended flock file is the
        # classic lost-lock race, so we never do)
        os.ftruncate(held[1], 0)
        os.close(held[1])

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def repo(self) -> Repository:
        """The loaded repository.

        Raises:
            WorkspaceError: :meth:`load` has not run.
        """
        if self._repo is None:
            raise WorkspaceError(f"workspace {self.path} is not loaded")
        return self._repo

    def load(self) -> Repository:
        """Open (or initialise) the workspace; returns its repository.

        Snapshot restore + op-log replay + journal re-attachment.  A
        fresh directory comes up as an empty repository with an empty
        journal — durability starts with the first operation.

        Raises:
            WorkspaceError: mismatched snapshot/op-log pair, or an
                unreadable op-log.
            WorkspaceLockedError: another live process holds the
                workspace's advisory lock.
        """
        if self._repo is not None:
            return self._repo
        self.path.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        try:
            repo = self._load_locked()
        except BaseException:
            # a broken store must not stay locked against other
            # processes for this process's lifetime
            if self._oplog is not None:
                self._oplog.close()
                self._oplog = None
            self._release_lock()
            raise
        self._repo = repo
        return repo

    def _load_locked(self) -> Repository:
        """The snapshot-restore + replay body; lock already held."""
        repo = Repository()
        if self.snapshot_path.exists():
            state = pickle.loads(self.snapshot_path.read_bytes())
            try:
                restore_into(repo, state)
            except ValueError as exc:
                raise WorkspaceError(
                    f"workspace {self.path}: {exc}"
                ) from exc

        self.replayed_ops = 0
        if self.oplog_path.exists():
            paired = OpLog.read_header(self.oplog_path)
            if paired == repo.mutations:
                oplog, scan = OpLog.open(self.oplog_path)
                self.replayed_ops = replay_ops(repo, scan.ops)
                self._oplog = oplog
            elif paired < repo.mutations:
                # crash between checkpoint's snapshot write and its
                # op-log reset: nothing ran in that window, so the
                # snapshot subsumes every logged op — start fresh
                self._oplog = OpLog.create(
                    self.oplog_path, snapshot_mutations=repo.mutations
                )
            else:
                raise WorkspaceError(
                    f"workspace {self.path}: op-log continues a "
                    f"snapshot at mutation {paired}, but the stored "
                    f"snapshot is at {repo.mutations} — not a "
                    "matching pair"
                )
        else:
            self._oplog = OpLog.create(
                self.oplog_path, snapshot_mutations=repo.mutations
            )

        repo.attach_journal(self._oplog)
        return repo

    def adopt(self, repo: Repository) -> int:
        """Become durable storage for an existing in-memory repository.

        Writes the first checkpoint and journals the repository from
        now on; returns the snapshot bytes.  Refuses a directory that
        already holds a repository — adopting over one would silently
        discard it.

        Raises:
            WorkspaceError: the directory is already initialised, or
                this workspace already carries a repository.
            WorkspaceLockedError: another live process holds the
                workspace's advisory lock.
        """
        if self._repo is not None:
            raise WorkspaceError(
                f"workspace {self.path} already carries a repository"
            )
        if self.is_initialized():
            raise WorkspaceError(
                f"workspace {self.path} already holds a repository — "
                "open it instead of adopting over it"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        self._repo = repo
        try:
            return self.checkpoint()
        except BaseException:
            self._repo = None
            self._release_lock()
            raise

    def checkpoint(self) -> int:
        """Write a snapshot and truncate the op-log; returns its bytes.

        After a checkpoint the op-log is empty, so the next reopen
        pays pure snapshot-load cost.  The snapshot write is atomic
        (temp + rename); see the module docstring for the crash window
        between the write and the log reset.
        """
        repo = self.repo
        blob = pickle.dumps(
            repository_state(repo), protocol=pickle.HIGHEST_PROTOCOL
        )
        tmp = self.snapshot_path.with_suffix(".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, self.snapshot_path)
        if self._oplog is not None:
            self._oplog.close()
        self._oplog = OpLog.create(
            self.oplog_path, snapshot_mutations=repo.mutations
        )
        repo.attach_journal(self._oplog)
        self.checkpoints_written += 1
        return len(blob)

    @property
    def ops_since_checkpoint(self) -> int:
        """Journal length — the replay work a reopen would pay now."""
        return self._oplog.op_count if self._oplog is not None else 0

    def checkpoint_if_due(self, every_ops: int | None) -> bool:
        """Checkpoint when the journal reached ``every_ops`` entries.

        The single home of the op-count policy (the facade and the
        maintenance service both delegate here): bounds the replay
        work a reopen pays without re-snapshotting per operation.
        ``None`` disables it.
        """
        if every_ops is None:
            return False
        if self.ops_since_checkpoint < max(every_ops, 1):
            return False
        self.checkpoint()
        return True

    def close(self) -> None:
        """Detach the journal, close the op-log, release the lock
        (state stays)."""
        if self._repo is not None:
            self._repo.detach_journal()
        if self._oplog is not None:
            self._oplog.close()
        self._repo = None
        self._oplog = None
        self._release_lock()

    def __enter__(self) -> "Workspace":
        self.load()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Workspace {self.path} "
            f"ops_since_checkpoint={self.ops_since_checkpoint}>"
        )
