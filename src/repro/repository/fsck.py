"""Repository consistency checking (fsck).

The repository holds three coupled views of the same state: the blob
store (payload bytes), the SQLite metadata database (the durable
index), and the in-memory object caches plus master graphs.  This
module verifies they agree and that the semantic invariants hold —
the check an operator runs after a crash, a restore, or a suspected
bug, and what the failure-injection tests use to assert that damage
is *detected* rather than silently served.

Checks performed:

* every indexed package/base row has a blob and a cached object,
  and every blob of that kind has an index row (no orphans);
* blob sizes match the package/base metadata they claim to carry;
* every published VMI's base exists, has a master graph, and the
  master graph contains every recorded primary;
* every published VMI is *retrievable*: every package Algorithm 3
  would import for it — each recorded primary plus its dependency
  closure in the master graph, minus what the base provides — resolves
  to a stored package blob;
* every recorded user-data label resolves;
* every master graph satisfies the Section III-H compatibility
  invariant and belongs to a stored base;
* the eagerly maintained liveness refcounts (packages, user data,
  bases — DESIGN.md §10) agree with a from-scratch recomputation over
  the records and join rows (``refcount-drift``), so incremental GC
  can trust them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphModelError, NotInRepositoryError
from repro.repository.blobstore import BlobKind
from repro.repository.repo import Repository, base_image_qcow2

__all__ = ["Inconsistency", "FsckReport", "check_repository"]


@dataclass(frozen=True)
class Inconsistency:
    """One detected problem."""

    #: machine-readable category ("orphan-blob", "missing-master", ...)
    kind: str
    #: what the problem is about (name, key, label)
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass(frozen=True)
class FsckReport:
    """Outcome of one consistency pass."""

    findings: tuple[Inconsistency, ...]
    checked_blobs: int
    checked_vmis: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[Inconsistency]:
        return [f for f in self.findings if f.kind == kind]


def check_repository(repo: Repository) -> FsckReport:
    """Run every consistency check; never mutates the repository."""
    findings: list[Inconsistency] = []

    # -- packages: db rows <-> blobs <-> cache --------------------------
    indexed_pkg_keys = set()
    for row in repo.db.all_packages():
        indexed_pkg_keys.add(row.blob_key)
        if not repo.blobs.contains(row.blob_key):
            findings.append(Inconsistency(
                "missing-blob", row.name,
                f"package indexed but blob {row.blob_key:#x} absent",
            ))
            continue
        blob = repo.blobs.get(row.blob_key)
        if blob.size != row.deb_size:
            findings.append(Inconsistency(
                "size-mismatch", row.name,
                f"blob holds {blob.size} B, index claims "
                f"{row.deb_size} B",
            ))
        try:
            repo.get_package(row.blob_key)
        except NotInRepositoryError:
            findings.append(Inconsistency(
                "missing-object", row.name,
                "package blob present but object cache lost it",
            ))
    for blob in repo.blobs.records(BlobKind.PACKAGE):
        if blob.key not in indexed_pkg_keys:
            findings.append(Inconsistency(
                "orphan-blob", blob.label,
                "package blob has no index row",
            ))

    # -- base images -------------------------------------------------------
    indexed_base_keys = set()
    for row in repo.db.base_images():
        indexed_base_keys.add(row.blob_key)
        if not repo.blobs.contains(row.blob_key):
            findings.append(Inconsistency(
                "missing-blob", f"base {row.blob_key:#x}",
                "base image indexed but blob absent",
            ))
            continue
        try:
            base = repo.get_base_image(row.blob_key)
        except NotInRepositoryError:
            base = None
        if base is None:
            findings.append(Inconsistency(
                "missing-object", f"base {row.blob_key:#x}",
                "base blob present but object cache lost it",
            ))
        else:
            expected = base_image_qcow2(base).size
            if repo.blobs.get(row.blob_key).size != expected:
                findings.append(Inconsistency(
                    "size-mismatch", str(base.attrs),
                    "stored qcow2 size disagrees with base content",
                ))
    for blob in repo.blobs.records(BlobKind.BASE_IMAGE):
        if blob.key not in indexed_base_keys:
            findings.append(Inconsistency(
                "orphan-blob", blob.label,
                "base-image blob has no index row",
            ))

    # -- VMI records ----------------------------------------------------------
    records = repo.vmi_records()
    #: (base_key, primary, version) -> packages its closure imports —
    #: records of one family share compositions, extract each once
    closure_memo: dict[tuple, tuple] = {}
    for record in records:
        if record.base_key not in indexed_base_keys:
            findings.append(Inconsistency(
                "dangling-base", record.name,
                f"record points at unknown base {record.base_key:#x}",
            ))
            continue
        if not repo.has_master_graph(record.base_key):
            findings.append(Inconsistency(
                "missing-master", record.name,
                "record's base has no master graph",
            ))
            continue
        master = repo.get_master_graph(record.base_key)
        base_names = master.base.package_names()
        #: missing blobs already reported for this record — primaries
        #: of one VMI often share dependencies, one finding each
        reported_missing: set[int] = set()
        for primary in record.primary_names:
            if not master.has_package(primary):
                findings.append(Inconsistency(
                    "missing-primary", record.name,
                    f"primary {primary!r} absent from master graph",
                ))
                continue
            # retrievability: Algorithm 3 imports the primary plus its
            # dependency closure, except what the base image provides —
            # every one of those packages must have a stored blob
            version = record.primary_version(primary)
            memo_key = (record.base_key, primary, version)
            imports = closure_memo.get(memo_key)
            if imports is None:
                try:
                    subgraph = master.extract_primary_subgraph(
                        primary, version
                    )
                except GraphModelError as exc:
                    findings.append(Inconsistency(
                        "missing-primary", record.name,
                        f"recorded version of {primary!r} not "
                        f"extractable: {exc}",
                    ))
                    continue
                imports = tuple(
                    pkg for pkg in subgraph.packages()
                    if pkg.name not in base_names
                )
                closure_memo[memo_key] = imports
            for pkg in imports:
                key = pkg.blob_key()
                if key in reported_missing or repo.blobs.contains(key):
                    continue
                reported_missing.add(key)
                findings.append(Inconsistency(
                    "unretrievable-package", record.name,
                    f"retrieval needs {pkg} but its package blob "
                    "is not stored",
                ))
        if record.data_label is not None:
            if not repo.has_user_data(record.data_label):
                findings.append(Inconsistency(
                    "missing-data", record.name,
                    f"user data {record.data_label!r} not stored",
                ))

    # -- liveness refcounts ------------------------------------------------
    expected_pkg = {key: 0 for key in indexed_pkg_keys}
    expected_data = {label: 0 for label in repo.user_data_labels()}
    expected_base = {key: 0 for key in indexed_base_keys}
    for record in records:
        if record.base_key in expected_base:
            expected_base[record.base_key] += 1
        if record.data_label in expected_data:
            expected_data[record.data_label] += 1
        for key in set(repo.db.vmi_package_keys(record.name)):
            if key in expected_pkg:
                expected_pkg[key] += 1
    maintained = repo.refcounts()
    for kind, expected, actual in (
        ("package", expected_pkg, maintained["packages"]),
        ("user data", expected_data, maintained["data"]),
        ("base", expected_base, maintained["bases"]),
    ):
        for subject, want in expected.items():
            have = actual.get(subject, 0)
            if have != want:
                findings.append(Inconsistency(
                    "refcount-drift", f"{kind} {subject}",
                    f"maintained refcount {have}, recomputation "
                    f"says {want}",
                ))

    # -- master graphs ------------------------------------------------------------
    for master in repo.master_graphs():
        if master.base_key not in indexed_base_keys:
            findings.append(Inconsistency(
                "orphan-master", str(master.attrs),
                "master graph's base is not stored",
            ))
        if not master.check_invariant():
            findings.append(Inconsistency(
                "invariant-violation", str(master.attrs),
                "a member primary subgraph is incompatible with the "
                "base (Section III-H invariant broken)",
            ))

    return FsckReport(
        findings=tuple(findings),
        checked_blobs=len(repo.blobs),
        checked_vmis=len(records),
    )
