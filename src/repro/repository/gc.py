"""Repository garbage collection — incremental by default.

Deleting a published VMI only drops its index record; the packages,
user data and base image it referenced may still serve other VMIs.
The repository maintains liveness *eagerly* (DESIGN.md §10): reference
counts per stored object, updated at publish/delete time, plus a
dirty-base set naming the bases whose master graphs and record
contributions a deletion or base replacement invalidated.

:class:`GarbageCollector` re-establishes the Section III-H invariant
(master graphs hold exactly the primary subgraphs of published VMIs)
in one of two modes:

* **incremental** (the default): re-derive only the *dirty* bases —
  rebuild their master graphs around live members, re-derive their
  records' package contributions — then sweep exactly the
  zero-reference candidates the refcounts already identified.  Work
  scales with churn since the last pass, not with repository size.
* **full** (``collect(full=True)``): the original stop-the-world
  mark-and-sweep, kept as the verification anchor.  Every live base is
  re-derived, every refcount rebuilt from scratch, and every stored
  object scanned.  The incremental path must match it exactly —
  identical survivors, master graphs, refcounts and byte accounting —
  a property the differential suite in
  ``tests/property/test_gc_incremental_props.py`` pins down.

Either mode keeps the blob-store byte accounting exact — the property
the GC tests and the sprawl example rely on.  When constructed with a
clock and cost model, a pass charges simulated time under the ``"gc"``
label (record scans, master rebuilds, blob unlinks).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository
from repro.sim.clock import SimulatedClock
from repro.sim.costmodel import CostModel

__all__ = ["GCReport", "GarbageCollector"]


@dataclass(frozen=True)
class GCReport:
    """What one collection pass reclaimed, and what it cost to find."""

    removed_packages: int
    removed_user_data: int
    removed_bases: int
    reclaimed_bytes: int
    #: "incremental" or "full"
    mode: str = "full"
    #: VMI records whose contributions were (re)derived this pass
    records_scanned: int = 0
    #: master graphs rebuilt around live members
    graph_rebuilds: int = 0
    #: simulated seconds charged to the pass (0 without a clock)
    gc_seconds: float = 0.0

    @property
    def removed_anything(self) -> bool:
        return (
            self.removed_packages
            + self.removed_user_data
            + self.removed_bases
        ) > 0


class GarbageCollector:
    """Refcount-driven sweep over the repository's reference graph."""

    def __init__(
        self,
        repo: Repository,
        clock: SimulatedClock | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.repo = repo
        self.clock = clock
        self.cost = cost

    def collect(self, *, full: bool = False) -> GCReport:
        """Run one collection pass; returns what was reclaimed.

        ``full=True`` runs the stop-the-world verification pass (every
        base re-derived, refcounts rebuilt, every stored object
        scanned); the default sweeps incrementally from the dirty-base
        set and the zero-reference candidates.
        """
        if self.clock is None:
            with self.repo.metadata_batch():
                return self._run(full)
        with self.clock.measure() as breakdown:
            # one SQLite commit for the whole pass — re-derivation and
            # the sweep both rewrite many rows
            with self.repo.metadata_batch():
                report = self._run(full)
        return dataclasses.replace(report, gc_seconds=breakdown.total)

    # ------------------------------------------------------------------

    def _charge(self, seconds: float) -> None:
        if self.clock is not None:
            self.clock.advance(seconds, "gc")

    def _run(self, full: bool) -> GCReport:
        repo = self.repo
        bytes_before = repo.total_bytes()

        if full:
            basis = [row.blob_key for row in repo.db.base_images()]
        else:
            basis = sorted(repo.dirty_bases())

        # -- mark: re-derive dirty (or all) bases -----------------------
        records_scanned = 0
        graph_rebuilds = 0
        for base_key in basis:
            records = repo.vmi_records_for_base(base_key)
            records_scanned += len(records)
            if self.cost is not None:
                self._charge(
                    len(records) * self.cost.gc_record_scan()
                )
            if records and repo.has_master_graph(base_key):
                self._rederive_base(base_key, records)
                graph_rebuilds += 1
            repo.clear_base_dirty(base_key)

        if full:
            # verification anchor: recompute every refcount from the
            # records and join rows instead of trusting the increments
            repo.rebuild_refcounts()

        # -- sweep: zero-reference packages, data, bases ----------------
        if full:
            pkg_candidates = [
                row.blob_key for row in repo.db.all_packages()
            ]
            data_candidates = list(repo.user_data_labels())
            base_candidates = [
                base.blob_key() for base in repo.base_images()
            ]
        else:
            pkg_candidates = sorted(repo.zero_ref_packages())
            data_candidates = sorted(repo.zero_ref_data())
            base_candidates = sorted(repo.zero_ref_bases())

        removed_packages = 0
        for key in pkg_candidates:
            if repo.package_refs(key) == 0:
                repo.remove_package(key)
                removed_packages += 1
                if self.cost is not None:
                    self._charge(self.cost.unlink_blob())

        removed_data = 0
        for label in data_candidates:
            if repo.data_refs(label) == 0:
                repo.remove_user_data(label)
                removed_data += 1
                if self.cost is not None:
                    self._charge(self.cost.unlink_blob())

        removed_bases = 0
        for key in base_candidates:
            if repo.base_refs(key) == 0:
                repo.remove_base_image(key)
                removed_bases += 1
                if self.cost is not None:
                    self._charge(self.cost.unlink_blob())

        return GCReport(
            removed_packages=removed_packages,
            removed_user_data=removed_data,
            removed_bases=removed_bases,
            reclaimed_bytes=bytes_before - repo.total_bytes(),
            mode="full" if full else "incremental",
            records_scanned=records_scanned,
            graph_rebuilds=graph_rebuilds,
        )

    # ------------------------------------------------------------------

    def _rederive_base(self, base_key: int, records: list) -> None:
        """Rebuild one live base's master graph around its live members
        and re-derive each record's package contribution.

        The inverse of Algorithm 1's storage steps, restricted to one
        base: the rebuilt master holds exactly the live members'
        primary subgraphs, and each record's contribution is its
        closure minus what the base provides — the same quantity the
        publisher records and the refcounts track.
        """
        repo = self.repo
        master = repo.get_master_graph(base_key)

        #: (primary name, version | None) pairs live on this base
        live_pairs: set[tuple[str, str | None]] = set()
        for record in records:
            for pname in record.primary_names:
                live_pairs.add((pname, record.primary_version(pname)))

        rebuilt = MasterGraph.for_base(master.base)
        #: pair -> the stored blob keys its closure imports
        pair_imports: dict[tuple[str, str | None], set[int]] = {}
        base_names = master.base.package_names()
        for pair in sorted(
            live_pairs, key=lambda pv: (pv[0], pv[1] or "")
        ):
            pname, version = pair
            if not master.has_package(pname):
                continue
            subgraph = master.extract_primary_subgraph(pname, version)
            rebuilt.add_primary_subgraph(subgraph)
            pair_imports[pair] = {
                pkg.blob_key()
                for pkg in subgraph.packages()
                if pkg.name not in base_names
                and repo.blobs.contains(pkg.blob_key())
            }
        rebuilt.member_vmis = [r.name for r in records]
        repo.put_master_graph(rebuilt)
        if self.cost is not None:
            self._charge(self.cost.master_rebuild(len(pair_imports)))

        for record in records:
            contribution: set[int] = set()
            for pname in record.primary_names:
                pair = (pname, record.primary_version(pname))
                contribution |= pair_imports.get(pair, set())
            repo.reassign_vmi_packages(
                record.name, sorted(contribution)
            )
