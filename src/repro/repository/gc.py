"""Repository garbage collection.

Deleting a published VMI only drops its index record; the packages,
user data and base image it referenced may still serve other VMIs.
:class:`GarbageCollector` computes liveness from the remaining records
and reclaims everything unreachable:

* master graphs are rebuilt to hold exactly the primary subgraphs of
  still-published VMIs (the Section III-H invariant is re-established,
  not patched);
* a package blob survives iff it appears in some live subgraph;
* user data survives iff some live record labels it;
* a base image (and its master graph) survives iff a live record
  points at it.

The collector is the inverse of Algorithm 1's storage steps and keeps
the blob-store byte accounting exact — the property the GC tests and
the sprawl example rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository

__all__ = ["GCReport", "GarbageCollector"]


@dataclass(frozen=True)
class GCReport:
    """What one collection pass reclaimed."""

    removed_packages: int
    removed_user_data: int
    removed_bases: int
    reclaimed_bytes: int

    @property
    def removed_anything(self) -> bool:
        return (
            self.removed_packages
            + self.removed_user_data
            + self.removed_bases
        ) > 0


class GarbageCollector:
    """Mark-and-sweep over the repository's reference graph."""

    def __init__(self, repo: Repository) -> None:
        self.repo = repo

    def collect(self) -> GCReport:
        """Run one full collection; returns what was reclaimed."""
        bytes_before = self.repo.total_bytes()
        records = self.repo.vmi_records()

        # -- mark: live bases, live primaries per base, live data -------
        live_base_keys = {r.base_key for r in records}
        #: base_key -> {(primary name, version | None)}
        live_primaries: dict[int, set[tuple[str, str | None]]] = {}
        live_data = {
            r.data_label for r in records if r.data_label is not None
        }
        for record in records:
            marks = live_primaries.setdefault(record.base_key, set())
            for pname in record.primary_names:
                marks.add((pname, record.primary_version(pname)))

        # -- rebuild master graphs around live members -------------------
        live_package_keys: set[int] = set()
        for master in list(self.repo.master_graphs()):
            base_key = master.base_key
            if base_key not in live_base_keys:
                continue  # swept with its base below
            rebuilt = MasterGraph.for_base(master.base)
            for primary, version in sorted(
                live_primaries.get(base_key, ()),
                key=lambda pv: (pv[0], pv[1] or ""),
            ):
                if master.has_package(primary):
                    rebuilt.add_primary_subgraph(
                        master.extract_primary_subgraph(
                            primary, version
                        )
                    )
            rebuilt.member_vmis = [
                r.name for r in records if r.base_key == base_key
            ]
            self.repo.put_master_graph(rebuilt)
            base_names = master.base.package_names()
            for pkg in rebuilt.package_graph.packages():
                if pkg.name not in base_names:
                    live_package_keys.add(pkg.blob_key())

        # -- sweep: packages ------------------------------------------------
        removed_packages = 0
        for row in list(self.repo.db.all_packages()):
            if row.blob_key not in live_package_keys:
                self.repo.remove_package(row.blob_key)
                removed_packages += 1

        # -- sweep: user data -----------------------------------------------
        removed_data = 0
        for label in list(self.repo.user_data_labels()):
            if label not in live_data:
                self.repo.remove_user_data(label)
                removed_data += 1

        # -- sweep: bases (and their masters) ---------------------------------
        removed_bases = 0
        for base in list(self.repo.base_images()):
            if base.blob_key() not in live_base_keys:
                self.repo.remove_base_image(base.blob_key())
                removed_bases += 1

        return GCReport(
            removed_packages=removed_packages,
            removed_user_data=removed_data,
            removed_bases=removed_bases,
            reclaimed_bytes=bytes_before - self.repo.total_bytes(),
        )
