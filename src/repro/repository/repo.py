"""The repository facade Algorithms 1-3 program against.

Combines the blob store (payload bytes), the SQLite metadata database
(the durable index) and the in-memory master graphs and object caches.
All state-changing operations keep the three views consistent; time is
*not* charged here — the algorithms charge the cost model explicitly so
each figure can attribute durations to the operations the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NotInRepositoryError
from repro.guestos.filesystem import package_manifest
from repro.image.manifest import FileManifest
from repro.image.qcow2 import Qcow2Image
from repro.model.package import Package
from repro.model.vmi import BaseImage, UserData
from repro.repository.blobstore import BlobKind, BlobStore
from repro.repository.database import (
    BaseImageRow,
    MetadataDatabase,
    PackageRow,
)
from repro.repository.master_graphs import MasterGraph
from repro.similarity.base import compatible_arch, same_release_version

__all__ = ["Repository", "VMIRecord", "base_image_qcow2"]


def base_image_qcow2(base: BaseImage) -> Qcow2Image:
    """Serialise a base image as the qcow2 blob the repository stores."""
    manifests = [package_manifest(p) for p in base.packages]
    manifests.append(base.skeleton)
    return Qcow2Image(
        name=str(base.attrs), manifest=FileManifest.concat(manifests)
    )


@dataclass(frozen=True)
class VMIRecord:
    """What the repository remembers about one published VMI."""

    name: str
    base_key: int
    primary_names: tuple[str, ...]
    data_label: str | None
    #: original upload footprint (Table II bookkeeping)
    mounted_size: int
    n_files: int
    #: exact (name, version, arch) of each primary — disambiguates
    #: when several versions of a primary were published over time
    primary_identities: tuple[tuple[str, str, str], ...] = ()

    def primary_version(self, name: str) -> str | None:
        """The recorded version of one primary (None if unrecorded)."""
        for pname, version, _ in self.primary_identities:
            if pname == name:
                return version
        return None


class Repository:
    """Packages + base images + user data + master graphs + VMI index."""

    def __init__(self, db_path: str = ":memory:") -> None:
        self.blobs = BlobStore()
        self.db = MetadataDatabase(db_path)
        self._packages: dict[int, Package] = {}
        self._bases: dict[int, BaseImage] = {}
        self._data: dict[str, UserData] = {}
        self._masters: dict[int, MasterGraph] = {}
        self._vmi_records: dict[str, VMIRecord] = {}
        #: memo for the graded release-equivalence test between two
        #: spellings (tiny domain: distinct release strings per distro)
        self._release_class: dict[tuple[str, str], bool] = {}
        #: master graphs indexed by the exact (T, D, V, A) quadruple
        self._masters_by_attrs: dict[
            tuple[str, str, str, str], list[int]
        ] = {}
        #: bumped on every state-changing operation; cheap freshness
        #: probe for caches derived from repository state (assembly
        #: plans revalidate only when this moved)
        self._mutations = 0

    # ------------------------------------------------------------------
    # revision hooks (cache invalidation)
    # ------------------------------------------------------------------

    @property
    def mutations(self) -> int:
        """Count of state-changing operations applied so far.

        Monotonic within a repository instance.  Equal counts guarantee
        identical state; unequal counts mean derived caches must
        revalidate against the content they depend on.
        """
        return self._mutations

    def _mutated(self) -> None:
        self._mutations += 1

    def master_revision(self, base_key: int) -> int | None:
        """The master-graph revision for a base, ``None`` when absent.

        The content-level freshness token for retrieval plans: a plan
        derived at revision ``r`` is stale iff this no longer returns
        ``r`` (membership merged in, base replaced, GC rebuilt).
        """
        master = self._masters.get(base_key)
        return master.revision if master is not None else None

    # ------------------------------------------------------------------
    # packages
    # ------------------------------------------------------------------

    def has_package(self, pkg: Package) -> bool:
        """Does this exact (name, version, arch) package exist?"""
        return self.blobs.contains(pkg.blob_key())

    def store_package(self, pkg: Package) -> bool:
        """Store a packaged ``.deb``; False when already present."""
        key = pkg.blob_key()
        if not self.blobs.put_if_absent(
            key, BlobKind.PACKAGE, pkg.deb_size, str(pkg)
        ):
            return False
        self._mutated()
        self._packages[key] = pkg
        self.db.insert_package(
            PackageRow(
                blob_key=key,
                name=pkg.name,
                version=str(pkg.version),
                arch=pkg.arch,
                deb_size=pkg.deb_size,
                installed_size=pkg.installed_size,
            )
        )
        return True

    def get_package(self, key: int) -> Package:
        """Fetch a stored package object.

        Raises:
            NotInRepositoryError: unknown key.
        """
        try:
            return self._packages[key]
        except KeyError:
            raise NotInRepositoryError("package", key) from None

    def packages_named(self, name: str) -> list[Package]:
        return [
            self._packages[row.blob_key]
            for row in self.db.packages_named(name)
        ]

    # ------------------------------------------------------------------
    # user data
    # ------------------------------------------------------------------

    def store_user_data(self, data: UserData) -> bool:
        """Store a user-data payload; False when already present."""
        if not self.blobs.put_if_absent(
            data.blob_key(), BlobKind.USER_DATA, data.size, data.label
        ):
            return False
        self._mutated()
        self._data[data.label] = data
        return True

    def get_user_data(self, label: str) -> UserData:
        """Raises NotInRepositoryError for unknown labels."""
        try:
            return self._data[label]
        except KeyError:
            raise NotInRepositoryError("user data", label) from None

    def user_data_labels(self) -> list[str]:
        return sorted(self._data)

    # ------------------------------------------------------------------
    # base images
    # ------------------------------------------------------------------

    def has_base_image(self, base: BaseImage) -> bool:
        return self.blobs.contains(base.blob_key())

    def store_base_image(self, base: BaseImage) -> bool:
        """Store a base image qcow2; False when already present."""
        key = base.blob_key()
        qcow = base_image_qcow2(base)
        if not self.blobs.put_if_absent(
            key, BlobKind.BASE_IMAGE, qcow.size, str(base.attrs)
        ):
            return False
        self._mutated()
        self._bases[key] = base
        self.db.insert_base_image(
            BaseImageRow(
                blob_key=key,
                os_type=base.attrs.os_type,
                distro=base.attrs.distro,
                version=base.attrs.version,
                arch=base.attrs.arch,
                size=qcow.size,
                n_packages=len(base.packages),
            )
        )
        return True

    def remove_base_image(self, key: int) -> BaseImage:
        """Delete an obsolete base (Algorithm 1 line 27) and its master.

        Raises:
            NotInRepositoryError: unknown key.
        """
        base = self._bases.pop(key, None)
        if base is None:
            raise NotInRepositoryError("base image", key)
        self._mutated()
        self.blobs.remove(key)
        self.db.delete_base_image(key)
        if self._masters.pop(key, None) is not None:
            siblings = self._masters_by_attrs.get(base.attrs.key(), [])
            if key in siblings:
                siblings.remove(key)
        return base

    def get_base_image(self, key: int) -> BaseImage:
        """Raises NotInRepositoryError for unknown keys."""
        try:
            return self._bases[key]
        except KeyError:
            raise NotInRepositoryError("base image", key) from None

    def base_images(self) -> list[BaseImage]:
        """All stored bases, insertion order (Algorithm 2 line 3)."""
        return [self._bases[row.blob_key] for row in self.db.base_images()]

    def base_images_matching(self, attrs) -> list[BaseImage]:
        """Stored bases with ``simBI(attrs, stored) = 1``, via the index.

        Exactly the bases a full scan of :meth:`base_images` filtered by
        :func:`~repro.similarity.base.same_base_attrs` would yield, in
        the same order — but the database serves only the rows sharing
        ``(os_type, distro)`` (``idx_base_images_attrs``), already in
        the scan's metadata-table order, and only the graded factors
        (portable arch, release-equivalence classes, memoised per
        spelling pair) are checked per row.  Per-query work scales with
        the matching family, not with the repository.
        """
        matching: list[BaseImage] = []
        for row in self.db.base_images_with_attrs(
            attrs.os_type, attrs.distro
        ):
            # same factor order as the scan's same_base_attrs: arch
            # before release, so unparseable releases behave identically
            if not compatible_arch(attrs.arch, row.arch):
                continue
            if not self._same_release(row.version, attrs.version):
                continue
            matching.append(self._bases[row.blob_key])
        return matching

    def _same_release(self, stored: str, query: str) -> bool:
        if stored == query:
            return True
        memo_key = (stored, query)
        hit = self._release_class.get(memo_key)
        if hit is None:
            hit = same_release_version(stored, query)
            self._release_class[memo_key] = hit
        return hit

    def base_image_size(self, key: int) -> int:
        """On-disk qcow2 bytes of a stored base."""
        return self.blobs.get(key).size

    # ------------------------------------------------------------------
    # master graphs
    # ------------------------------------------------------------------

    def get_master_graph(self, base_key: int) -> MasterGraph:
        """Raises NotInRepositoryError when the base has no master."""
        try:
            return self._masters[base_key]
        except KeyError:
            raise NotInRepositoryError("master graph", base_key) from None

    def has_master_graph(self, base_key: int) -> bool:
        return base_key in self._masters

    def put_master_graph(self, master: MasterGraph) -> None:
        self._mutated()
        siblings = self._masters_by_attrs.setdefault(
            master.attrs.key(), []
        )
        if master.base_key not in siblings:
            siblings.append(master.base_key)
        self._masters[master.base_key] = master

    def master_graphs(self) -> list[MasterGraph]:
        return list(self._masters.values())

    def masters_with_attrs(self, attrs) -> list[MasterGraph]:
        """Masters whose base shares the (T, D, V, A) quadruple.

        Indexed by the exact quadruple, so the semantic analyzer's
        per-upload lookup is independent of how many master graphs other
        families carry.  ``_masters`` stays the source of truth: index
        entries whose master has vanished (lost in-memory state) are
        skipped.
        """
        return [
            self._masters[key]
            for key in self._masters_by_attrs.get(attrs.key(), ())
            if key in self._masters
        ]

    # ------------------------------------------------------------------
    # VMI records
    # ------------------------------------------------------------------

    def record_vmi(self, record: VMIRecord, package_keys: list[int]) -> None:
        self._mutated()
        self._vmi_records[record.name] = record
        self.db.insert_vmi(
            record.name, record.base_key, record.data_label, package_keys
        )

    def get_vmi_record(self, name: str) -> VMIRecord:
        """Raises NotInRepositoryError for unpublished names."""
        try:
            return self._vmi_records[name]
        except KeyError:
            raise NotInRepositoryError("VMI", name) from None

    def vmi_records(self) -> list[VMIRecord]:
        return [self._vmi_records[r.name] for r in self.db.vmis()]

    def delete_vmi_record(self, name: str) -> VMIRecord:
        """Drop a published VMI from the index (blobs stay until GC).

        Raises:
            NotInRepositoryError: unpublished name.
        """
        record = self.get_vmi_record(name)
        self._mutated()
        self.db.delete_vmi(name)
        del self._vmi_records[name]
        return record

    def remove_package(self, key: int) -> Package:
        """Delete a stored package blob (garbage collection only).

        Raises:
            NotInRepositoryError: unknown key.
        """
        pkg = self._packages.pop(key, None)
        if pkg is None:
            raise NotInRepositoryError("package", key)
        self._mutated()
        self.blobs.remove(key)
        self.db.delete_package(key)
        return pkg

    def remove_user_data(self, label: str) -> UserData:
        """Delete a stored user-data blob (garbage collection only).

        Raises:
            NotInRepositoryError: unknown label.
        """
        data = self._data.pop(label, None)
        if data is None:
            raise NotInRepositoryError("user data", label)
        self._mutated()
        self.blobs.remove(data.blob_key())
        return data

    def repoint_vmis(self, old_base_key: int, new_base_key: int) -> int:
        """Re-point published VMIs after a base replacement; returns count."""
        n = 0
        for name, rec in list(self._vmi_records.items()):
            if rec.base_key == old_base_key:
                updated = VMIRecord(
                    name=rec.name,
                    base_key=new_base_key,
                    primary_names=rec.primary_names,
                    data_label=rec.data_label,
                    mounted_size=rec.mounted_size,
                    n_files=rec.n_files,
                    primary_identities=rec.primary_identities,
                )
                self._mutated()
                self._vmi_records[name] = updated
                self.db.update_vmi_base(name, new_base_key)
                n += 1
        return n

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Repository size — what Figure 3 plots for Expelliarmus."""
        return self.blobs.total_bytes()

    def bytes_by_kind(self) -> dict[str, int]:
        return {
            kind.value: self.blobs.total_bytes(kind) for kind in BlobKind
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Repository vmis={len(self._vmi_records)} "
            f"bases={len(self._bases)} packages={len(self._packages)} "
            f"bytes={self.total_bytes()}>"
        )
