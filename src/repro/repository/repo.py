"""The repository facade Algorithms 1-3 program against.

Combines the blob store (payload bytes), the SQLite metadata database
(the durable index) and the in-memory master graphs and object caches.
All state-changing operations keep the three views consistent; time is
*not* charged here — the algorithms charge the cost model explicitly so
each figure can attribute durations to the operations the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import wraps

from repro.errors import NotInRepositoryError
from repro.guestos.filesystem import package_manifest
from repro.image.manifest import FileManifest
from repro.image.qcow2 import Qcow2Image
from repro.model.package import Package
from repro.model.vmi import BaseImage, UserData
from repro.repository.blobstore import BlobKind, BlobStore
from repro.repository.database import (
    BaseImageRow,
    MetadataDatabase,
    PackageRow,
)
from repro.repository.locking import RepositoryLock
from repro.repository.master_graphs import MasterGraph, master_state
from repro.similarity.base import compatible_arch, same_release_version

__all__ = ["Repository", "VMIRecord", "base_image_qcow2"]


def _exclusive(method):
    """Run a state-changing primitive under the repository write lock.

    Primitives self-protect so interleaved threads can never tear the
    journal/mutation-counter pairing; the lock is reentrant, so a
    service holding the *operation-level* write lock (a whole publish
    or GC pass) pays only a depth increment per primitive.
    """

    @wraps(method)
    def wrapper(self, *args, **kwargs):
        with self.lock.write():
            return method(self, *args, **kwargs)

    return wrapper


def base_image_qcow2(base: BaseImage) -> Qcow2Image:
    """Serialise a base image as the qcow2 blob the repository stores."""
    manifests = [package_manifest(p) for p in base.packages]
    manifests.append(base.skeleton)
    return Qcow2Image(
        name=str(base.attrs), manifest=FileManifest.concat(manifests)
    )


@dataclass(frozen=True)
class VMIRecord:
    """What the repository remembers about one published VMI."""

    name: str
    base_key: int
    primary_names: tuple[str, ...]
    data_label: str | None
    #: original upload footprint (Table II bookkeeping)
    mounted_size: int
    n_files: int
    #: exact (name, version, arch) of each primary — disambiguates
    #: when several versions of a primary were published over time
    primary_identities: tuple[tuple[str, str, str], ...] = ()

    def primary_version(self, name: str) -> str | None:
        """The recorded version of one primary (None if unrecorded)."""
        for pname, version, _ in self.primary_identities:
            if pname == name:
                return version
        return None


class Repository:
    """Packages + base images + user data + master graphs + VMI index."""

    def __init__(self, db_path: str = ":memory:") -> None:
        #: the coarse transaction lock (DESIGN.md §12): primitives
        #: below take it for writes; services take it around whole
        #: operations (reentrancy makes the nesting free) and use
        #: ``lock.read()`` for shared read-only access
        self.lock = RepositoryLock()
        self.blobs = BlobStore()
        self.db = MetadataDatabase(db_path)
        self._packages: dict[int, Package] = {}
        self._bases: dict[int, BaseImage] = {}
        self._data: dict[str, UserData] = {}
        self._masters: dict[int, MasterGraph] = {}
        self._vmi_records: dict[str, VMIRecord] = {}
        #: memo for the graded release-equivalence test between two
        #: spellings (tiny domain: distinct release strings per distro)
        self._release_class: dict[tuple[str, str], bool] = {}
        #: master graphs indexed by the exact (T, D, V, A) quadruple
        self._masters_by_attrs: dict[
            tuple[str, str, str, str], list[int]
        ] = {}
        #: bumped on every state-changing operation; cheap freshness
        #: probe for caches derived from repository state (assembly
        #: plans revalidate only when this moved)
        self._mutations = 0
        #: reference counts per stored object (DESIGN.md §10):
        #: packages count live records whose retrieval-import closure
        #: contains the blob, bases and user data count live records
        #: pointing at them.  Maintained eagerly at publish/delete time
        #: so GC liveness never requires a full rescan.
        self._pkg_refs: dict[int, int] = {}
        self._data_refs: dict[str, int] = {}
        self._base_refs: dict[int, int] = {}
        #: zero-reference sweep candidates awaiting the next GC pass;
        #: always exactly the stored objects with refcount 0
        self._zero_packages: set[int] = set()
        self._zero_data: set[str] = set()
        self._zero_bases: set[int] = set()
        #: bases whose master graph and record contributions must be
        #: re-derived by the next GC pass (a deletion or base
        #: replacement touched them since the last pass)
        self._dirty_bases: set[int] = set()
        #: write-ahead journal sink (the workspace op-log); every
        #: state-changing primitive appends its op *before* applying
        self._journal = None

    # ------------------------------------------------------------------
    # write-ahead journaling
    # ------------------------------------------------------------------

    @_exclusive
    def attach_journal(self, journal) -> None:
        """Journal every state-changing primitive to ``journal``.

        ``journal`` needs one method, ``append(op, args)``, and must
        serialise its arguments *eagerly* — some ops pass live mutable
        state (master package graphs) that later operations mutate in
        place.  Ops are appended before the mutation is applied
        (write-ahead), so a journal that reached durable storage always
        describes at least the state the repository reached.

        The swap runs under the write lock, and every primitive both
        journals and applies under that same lock — so under parallel
        execution the op-log's append order *is* the application order
        and crash replay stays deterministic.
        """
        self._journal = journal

    @_exclusive
    def detach_journal(self) -> None:
        """Stop journaling (snapshot load / op-log replay run bare)."""
        self._journal = None

    # reprolint: unlocked — only called inside locked primitives; the
    # append order is the application order because both happen under
    # the same write-lock hold
    def _log(self, op: str, *args) -> None:
        if self._journal is not None:
            self._journal.append(op, args)

    def metadata_batch(self):
        """Defer metadata-database commits across a multi-write scope.

        Context manager.  Services wrap whole pipelines (batch publish,
        bulk delete, GC sweeps) in one scope so SQLite commits once per
        pipeline instead of once per row; see
        :meth:`~repro.repository.database.MetadataDatabase.batch`.
        Crash safety is unchanged: recovery replays the write-ahead
        op-log, never the SQLite index.
        """
        return self.db.batch()

    # ------------------------------------------------------------------
    # revision hooks (cache invalidation)
    # ------------------------------------------------------------------

    @property
    def mutations(self) -> int:
        """Count of state-changing operations applied so far.

        Monotonic within a repository instance.  Equal counts guarantee
        identical state; unequal counts mean derived caches must
        revalidate against the content they depend on.
        """
        return self._mutations

    # reprolint: unlocked — only called inside locked primitives,
    # paired with their journal append under one write-lock hold
    def _mutated(self) -> None:
        self._mutations += 1

    @_exclusive
    def restore_mutations(self, count: int) -> None:
        """Restore the mutation counter from a snapshot (reload only).

        Snapshot fidelity requires the reloaded counter to equal the
        saved one exactly: derived-state caches persisted across
        sessions key their fast-path validity on this counter, so a
        reloaded repository that restarted it from the rebuild's op
        count could falsely validate them.  Monotonicity is preserved —
        the counter only ever moves forward.

        Raises:
            ValueError: ``count`` is behind the current counter.
        """
        if count < self._mutations:
            raise ValueError(
                f"mutation counter may not move backwards "
                f"({self._mutations} -> {count})"
            )
        self._mutations = count

    def master_revision(self, base_key: int) -> int | None:
        """The master-graph revision for a base, ``None`` when absent.

        The content-level freshness token for retrieval plans: a plan
        derived at revision ``r`` is stale iff this no longer returns
        ``r`` (membership merged in, base replaced, GC rebuilt).
        """
        master = self._masters.get(base_key)
        return master.revision if master is not None else None

    # ------------------------------------------------------------------
    # liveness bookkeeping (refcounts + dirty bases)
    # ------------------------------------------------------------------

    def package_refs(self, key: int) -> int:
        """Live records whose import closure contains this package."""
        return self._pkg_refs.get(key, 0)

    def data_refs(self, label: str) -> int:
        """Live records labelled with this user data."""
        return self._data_refs.get(label, 0)

    def base_refs(self, key: int) -> int:
        """Live records published on this base."""
        return self._base_refs.get(key, 0)

    def refcounts(self) -> dict[str, dict]:
        """A snapshot of all three refcount maps (test/fsck probe)."""
        return {
            "packages": dict(self._pkg_refs),
            "data": dict(self._data_refs),
            "bases": dict(self._base_refs),
        }

    def dirty_bases(self) -> frozenset[int]:
        """Bases the next GC pass must re-derive."""
        return frozenset(self._dirty_bases)

    @_exclusive
    def mark_base_dirty(self, key: int) -> None:
        self._log("mark_base_dirty", key)
        self._dirty_bases.add(key)

    @_exclusive
    def clear_base_dirty(self, key: int) -> None:
        self._log("clear_base_dirty", key)
        self._dirty_bases.discard(key)

    def zero_ref_packages(self) -> frozenset[int]:
        """Stored package blobs no live record references."""
        return frozenset(self._zero_packages)

    def zero_ref_data(self) -> frozenset[str]:
        """Stored user-data labels no live record references."""
        return frozenset(self._zero_data)

    def zero_ref_bases(self) -> frozenset[int]:
        """Stored bases no live record is published on."""
        return frozenset(self._zero_bases)

    def reclaimable_bytes(self) -> int:
        """Bytes the next GC pass would free (exact, from refcounts)."""
        total = 0
        for key in self._zero_packages:
            total += self.blobs.get(key).size
        for label in self._zero_data:
            total += self.blobs.get(self._data[label].blob_key()).size
        for key in self._zero_bases:
            total += self.blobs.get(key).size
        return total

    def _incr(self, refs: dict, zero: set, key) -> None:
        refs[key] = refs.get(key, 0) + 1
        zero.discard(key)

    def _decr(self, refs: dict, zero: set, key) -> None:
        count = refs.get(key, 0) - 1
        if count < 0:  # pragma: no cover - guards bookkeeping bugs
            raise ValueError(f"refcount underflow for {key!r}")
        refs[key] = count
        if count == 0:
            zero.add(key)

    @_exclusive
    def rebuild_refcounts(self) -> None:
        """Recompute every refcount from the records and join rows.

        The full GC pass's verification anchor: incremental maintenance
        must always leave the counters in exactly the state this
        recomputation produces (the fsck ``refcount-drift`` check and
        the differential property suite compare the two).
        """
        self._pkg_refs = {
            row.blob_key: 0 for row in self.db.all_packages()
        }
        self._data_refs = {label: 0 for label in self._data}
        self._base_refs = {
            row.blob_key: 0 for row in self.db.base_images()
        }
        join_rows = self.db.all_vmi_package_keys()
        for record in self.vmi_records():
            if record.base_key in self._base_refs:
                self._base_refs[record.base_key] += 1
            if record.data_label in self._data_refs:
                self._data_refs[record.data_label] += 1
            for key in set(join_rows.get(record.name, ())):
                if key in self._pkg_refs:
                    self._pkg_refs[key] += 1
        self._zero_packages = {
            k for k, n in self._pkg_refs.items() if n == 0
        }
        self._zero_data = {
            label for label, n in self._data_refs.items() if n == 0
        }
        self._zero_bases = {
            k for k, n in self._base_refs.items() if n == 0
        }

    @_exclusive
    def reassign_vmi_packages(
        self, name: str, package_keys: list[int]
    ) -> bool:
        """Replace a record's package contribution (GC re-derivation).

        Adjusts the package refcounts by the set difference and rewrites
        the join rows; returns True when the contribution changed.
        """
        old = set(self.db.vmi_package_keys(name))
        new = set(package_keys)
        if old == new:
            return False
        self._log("reassign_vmi_packages", name, sorted(new))
        self._mutated()
        for key in old - new:
            self._decr(self._pkg_refs, self._zero_packages, key)
        for key in new - old:
            self._incr(self._pkg_refs, self._zero_packages, key)
        self.db.replace_vmi_packages(name, sorted(new))
        return True

    # ------------------------------------------------------------------
    # packages
    # ------------------------------------------------------------------

    def has_package(self, pkg: Package) -> bool:
        """Does this exact (name, version, arch) package exist?"""
        return self.blobs.contains(pkg.blob_key())

    @_exclusive
    def store_package(self, pkg: Package) -> bool:
        """Store a packaged ``.deb``; False when already present."""
        key = pkg.blob_key()
        if self.blobs.contains(key):
            return False
        self._log("store_package", pkg)
        self.blobs.put(key, BlobKind.PACKAGE, pkg.deb_size, str(pkg))
        self._mutated()
        self._packages[key] = pkg
        self._pkg_refs.setdefault(key, 0)
        if self._pkg_refs[key] == 0:
            self._zero_packages.add(key)
        self.db.insert_package(
            PackageRow(
                blob_key=key,
                name=pkg.name,
                version=str(pkg.version),
                arch=pkg.arch,
                deb_size=pkg.deb_size,
                installed_size=pkg.installed_size,
            )
        )
        return True

    def get_package(self, key: int) -> Package:
        """Fetch a stored package object.

        Raises:
            NotInRepositoryError: unknown key.
        """
        try:
            return self._packages[key]
        except KeyError:
            raise NotInRepositoryError("package", key) from None

    def packages_named(self, name: str) -> list[Package]:
        return [
            self._packages[row.blob_key]
            for row in self.db.packages_named(name)
        ]

    def packages(self) -> list[Package]:
        """All stored packages, metadata-index order.

        The public iteration surface snapshot code uses — persistence
        must never reach into the object caches directly, or it
        silently desynchronises from internal refactors.
        """
        return [
            self._packages[row.blob_key]
            for row in self.db.all_packages()
        ]

    # ------------------------------------------------------------------
    # user data
    # ------------------------------------------------------------------

    @_exclusive
    def store_user_data(self, data: UserData) -> bool:
        """Store a user-data payload; False when already present."""
        if self.blobs.contains(data.blob_key()):
            return False
        self._log("store_user_data", data)
        self.blobs.put(
            data.blob_key(), BlobKind.USER_DATA, data.size, data.label
        )
        self._mutated()
        self._data[data.label] = data
        self._data_refs.setdefault(data.label, 0)
        if self._data_refs[data.label] == 0:
            self._zero_data.add(data.label)
        return True

    def has_user_data(self, label: str) -> bool:
        """Is a user-data payload stored under ``label``?  The public
        probe fsck and services use — reaching into the object cache
        is an RL003 violation."""
        return label in self._data

    def get_user_data(self, label: str) -> UserData:
        """Raises NotInRepositoryError for unknown labels."""
        try:
            return self._data[label]
        except KeyError:
            raise NotInRepositoryError("user data", label) from None

    def user_data_labels(self) -> list[str]:
        return sorted(self._data)

    def stored_user_data(self) -> list[UserData]:
        """All stored user-data payloads, label order."""
        return [self._data[label] for label in self.user_data_labels()]

    # ------------------------------------------------------------------
    # base images
    # ------------------------------------------------------------------

    def has_base_image(self, base: BaseImage) -> bool:
        return self.blobs.contains(base.blob_key())

    @_exclusive
    def store_base_image(self, base: BaseImage) -> bool:
        """Store a base image qcow2; False when already present."""
        key = base.blob_key()
        if self.blobs.contains(key):
            return False
        self._log("store_base_image", base)
        qcow = base_image_qcow2(base)
        self.blobs.put(
            key, BlobKind.BASE_IMAGE, qcow.size, str(base.attrs)
        )
        self._mutated()
        self._bases[key] = base
        self._base_refs.setdefault(key, 0)
        if self._base_refs[key] == 0:
            self._zero_bases.add(key)
        self.db.insert_base_image(
            BaseImageRow(
                blob_key=key,
                os_type=base.attrs.os_type,
                distro=base.attrs.distro,
                version=base.attrs.version,
                arch=base.attrs.arch,
                size=qcow.size,
                n_packages=len(base.packages),
            )
        )
        return True

    @_exclusive
    def remove_base_image(self, key: int) -> BaseImage:
        """Delete an obsolete base (Algorithm 1 line 27) and its master.

        Raises:
            NotInRepositoryError: unknown key.
        """
        if key not in self._bases:
            raise NotInRepositoryError("base image", key)
        self._log("remove_base_image", key)
        base = self._bases.pop(key)
        self._mutated()
        self.blobs.remove(key)
        self.db.delete_base_image(key)
        self._base_refs.pop(key, None)
        self._zero_bases.discard(key)
        self._dirty_bases.discard(key)
        if self._masters.pop(key, None) is not None:
            siblings = self._masters_by_attrs.get(base.attrs.key(), [])
            if key in siblings:
                siblings.remove(key)
        return base

    def get_base_image(self, key: int) -> BaseImage:
        """Raises NotInRepositoryError for unknown keys."""
        try:
            return self._bases[key]
        except KeyError:
            raise NotInRepositoryError("base image", key) from None

    def base_images(self) -> list[BaseImage]:
        """All stored bases, insertion order (Algorithm 2 line 3)."""
        return [self._bases[row.blob_key] for row in self.db.base_images()]

    def base_images_matching(self, attrs) -> list[BaseImage]:
        """Stored bases with ``simBI(attrs, stored) = 1``, via the index.

        Exactly the bases a full scan of :meth:`base_images` filtered by
        :func:`~repro.similarity.base.same_base_attrs` would yield, in
        the same order — but the database serves only the rows sharing
        ``(os_type, distro)`` (``idx_base_images_attrs``), already in
        the scan's metadata-table order, and only the graded factors
        (portable arch, release-equivalence classes, memoised per
        spelling pair) are checked per row.  Per-query work scales with
        the matching family, not with the repository.
        """
        matching: list[BaseImage] = []
        for row in self.db.base_images_with_attrs(
            attrs.os_type, attrs.distro
        ):
            # same factor order as the scan's same_base_attrs: arch
            # before release, so unparseable releases behave identically
            if not compatible_arch(attrs.arch, row.arch):
                continue
            if not self._same_release(row.version, attrs.version):
                continue
            matching.append(self._bases[row.blob_key])
        return matching

    # reprolint: unlocked — benign-race memo of a pure function: two
    # racing writers store the same value, and dict item assignment is
    # atomic under the GIL
    def _same_release(self, stored: str, query: str) -> bool:
        if stored == query:
            return True
        memo_key = (stored, query)
        hit = self._release_class.get(memo_key)
        if hit is None:
            hit = same_release_version(stored, query)
            self._release_class[memo_key] = hit
        return hit

    def base_image_size(self, key: int) -> int:
        """On-disk qcow2 bytes of a stored base."""
        return self.blobs.get(key).size

    # ------------------------------------------------------------------
    # master graphs
    # ------------------------------------------------------------------

    def get_master_graph(self, base_key: int) -> MasterGraph:
        """Raises NotInRepositoryError when the base has no master."""
        try:
            return self._masters[base_key]
        except KeyError:
            raise NotInRepositoryError("master graph", base_key) from None

    def has_master_graph(self, base_key: int) -> bool:
        return base_key in self._masters

    @_exclusive
    def put_master_graph(self, master: MasterGraph) -> None:
        # the journal entry is the master's *content* (not the object):
        # the base is already journaled by its own store op, so the
        # entry carries exactly what a reload cannot re-derive
        self._log("put_master_graph", master_state(master))
        self._mutated()
        siblings = self._masters_by_attrs.setdefault(
            master.attrs.key(), []
        )
        if master.base_key not in siblings:
            siblings.append(master.base_key)
        self._masters[master.base_key] = master

    def master_graphs(self) -> list[MasterGraph]:
        return list(self._masters.values())

    def masters_with_attrs(self, attrs) -> list[MasterGraph]:
        """Masters whose base shares the (T, D, V, A) quadruple.

        Indexed by the exact quadruple, so the semantic analyzer's
        per-upload lookup is independent of how many master graphs other
        families carry.  ``_masters`` stays the source of truth: index
        entries whose master has vanished (lost in-memory state) are
        skipped.
        """
        return [
            self._masters[key]
            for key in self._masters_by_attrs.get(attrs.key(), ())
            if key in self._masters
        ]

    # ------------------------------------------------------------------
    # VMI records
    # ------------------------------------------------------------------

    @_exclusive
    def record_vmi(self, record: VMIRecord, package_keys: list[int]) -> None:
        """Index a published VMI; ``package_keys`` is its retrieval
        import closure (stored blobs Algorithm 3 would install), the
        contribution the liveness refcounts track."""
        self._log("record_vmi", record, list(package_keys))
        self._mutated()
        self._vmi_records[record.name] = record
        self.db.insert_vmi(
            record.name, record.base_key, record.data_label, package_keys
        )
        self._incr(self._base_refs, self._zero_bases, record.base_key)
        if record.data_label is not None:
            self._incr(self._data_refs, self._zero_data, record.data_label)
        for key in set(package_keys):
            self._incr(self._pkg_refs, self._zero_packages, key)

    def get_vmi_record(self, name: str) -> VMIRecord:
        """Raises NotInRepositoryError for unpublished names."""
        try:
            return self._vmi_records[name]
        except KeyError:
            raise NotInRepositoryError("VMI", name) from None

    def has_vmi(self, name: str) -> bool:
        """Is ``name`` a published VMI?  O(1) against the live index —
        the publish-path duplicate check must not read the whole VMI
        table per upload."""
        return name in self._vmi_records

    def vmi_records(self) -> list[VMIRecord]:
        return [self._vmi_records[r.name] for r in self.db.vmis()]

    def vmi_contribution(self, name: str) -> list[int]:
        """The stored blob keys a record's retrieval imports (its
        liveness contribution — the join rows ``record_vmi`` wrote)."""
        return self.db.vmi_package_keys(name)

    def vmi_records_for_base(self, base_key: int) -> list[VMIRecord]:
        """Live records on one base, record order (indexed lookup)."""
        return [
            self._vmi_records[row.name]
            for row in self.db.vmis_for_base(base_key)
        ]

    @_exclusive
    def delete_vmi_record(self, name: str) -> VMIRecord:
        """Drop a published VMI from the index (blobs stay until GC).

        Decrements the refcounts of everything the record referenced
        and marks its base dirty, so the next incremental GC pass knows
        exactly what to sweep and which master graph to rebuild.

        Raises:
            NotInRepositoryError: unpublished name.
        """
        record = self.get_vmi_record(name)
        contribution = self.db.vmi_package_keys(name)
        self._log("delete_vmi_record", name)
        self._mutated()
        self.db.delete_vmi(name)
        del self._vmi_records[name]
        self._decr(self._base_refs, self._zero_bases, record.base_key)
        if record.data_label is not None:
            self._decr(self._data_refs, self._zero_data, record.data_label)
        for key in set(contribution):
            self._decr(self._pkg_refs, self._zero_packages, key)
        self._dirty_bases.add(record.base_key)
        return record

    @_exclusive
    def remove_package(self, key: int) -> Package:
        """Delete a stored package blob (garbage collection only).

        Raises:
            NotInRepositoryError: unknown key.
        """
        if key not in self._packages:
            raise NotInRepositoryError("package", key)
        self._log("remove_package", key)
        pkg = self._packages.pop(key)
        self._mutated()
        self.blobs.remove(key)
        self.db.delete_package(key)
        self._pkg_refs.pop(key, None)
        self._zero_packages.discard(key)
        return pkg

    @_exclusive
    def remove_user_data(self, label: str) -> UserData:
        """Delete a stored user-data blob (garbage collection only).

        Raises:
            NotInRepositoryError: unknown label.
        """
        if label not in self._data:
            raise NotInRepositoryError("user data", label)
        self._log("remove_user_data", label)
        data = self._data.pop(label)
        self._mutated()
        self.blobs.remove(data.blob_key())
        self._data_refs.pop(label, None)
        self._zero_data.discard(label)
        return data

    @_exclusive
    def repoint_vmis(self, old_base_key: int, new_base_key: int) -> int:
        """Re-point published VMIs after a base replacement; returns count."""
        records = self.vmi_records_for_base(old_base_key)
        if records:
            self._log("repoint_vmis", old_base_key, new_base_key)
        n = 0
        for rec in records:
            updated = VMIRecord(
                name=rec.name,
                base_key=new_base_key,
                primary_names=rec.primary_names,
                data_label=rec.data_label,
                mounted_size=rec.mounted_size,
                n_files=rec.n_files,
                primary_identities=rec.primary_identities,
            )
            self._mutated()
            self._vmi_records[rec.name] = updated
            self.db.update_vmi_base(rec.name, new_base_key)
            self._decr(self._base_refs, self._zero_bases, old_base_key)
            self._incr(self._base_refs, self._zero_bases, new_base_key)
            n += 1
        if n:
            # migrated records' contributions were derived against the
            # old base's package population; the next GC pass must
            # re-derive them against the new base
            self._dirty_bases.add(new_base_key)
        return n

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Repository size — what Figure 3 plots for Expelliarmus."""
        return self.blobs.total_bytes()

    def bytes_by_kind(self) -> dict[str, int]:
        return {
            kind.value: self.blobs.total_bytes(kind) for kind in BlobKind
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Repository vmis={len(self._vmi_records)} "
            f"bases={len(self._bases)} packages={len(self._packages)} "
            f"bytes={self.total_bytes()}>"
        )
