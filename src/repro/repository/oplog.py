"""The repository write-ahead op-log.

A snapshot alone makes durability *expensive*: every publish would have
to re-serialise the whole repository to survive a crash.  The op-log
makes it cheap — the repository journals each state-changing primitive
(store/remove/record/delete/reassign/repoint/master-put/dirty marks)
*before* applying it, and reopening a workspace is

    last snapshot  +  replay of the ops appended since,

so reopen cost is O(ops since checkpoint), not O(repository).

Log layout: one header record naming the op-log format version and the
``mutations`` counter of the snapshot this log continues from (so a
mismatched snapshot/op-log pair is detected instead of replayed), then
one pickled ``(op, args)`` record per journaled primitive.  Ops are the
repository's own public method names with their call arguments, so
replay is a dispatch loop over the same primitives that produced the
state — there is no second implementation of the mutation semantics to
drift.

Crash consistency: records are flushed per append and applied to the
repository only after the append returns, so the log always describes
at least the state the repository reached.  A crash mid-append leaves a
*torn tail* — a final, partially written record.  Readers stop at the
last complete record and report the torn bytes; reopening for append
truncates them, which is exactly the classic WAL recovery contract:
an operation whose journal record never became durable never happened.

Like snapshots, the log is pickle-based and must only be read from
trusted sources (it is produced and consumed by the same application).
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WorkspaceError
from repro.repository.master_graphs import master_from_state
from repro.repository.repo import Repository

__all__ = ["OpLog", "OpLogRecord", "ReplayReport", "replay_ops"]

_OPLOG_VERSION = 1

#: the primitives the replayer understands — exactly the journaled
#: surface of :class:`~repro.repository.repo.Repository`
_REPLAYABLE_OPS = frozenset({
    "store_package",
    "store_user_data",
    "store_base_image",
    "remove_package",
    "remove_user_data",
    "remove_base_image",
    "record_vmi",
    "delete_vmi_record",
    "reassign_vmi_packages",
    "repoint_vmis",
    "put_master_graph",
    "mark_base_dirty",
    "clear_base_dirty",
})


@dataclass(frozen=True)
class OpLogRecord:
    """One journaled primitive: the op name and its call arguments."""

    op: str
    args: tuple


@dataclass(frozen=True)
class ReplayReport:
    """What reading (and replaying) one op-log found."""

    #: ``mutations`` counter of the snapshot the log continues from
    snapshot_mutations: int
    #: complete records read, in append order
    ops: tuple[OpLogRecord, ...]
    #: bytes of a torn tail record (crash mid-append); 0 when clean
    torn_bytes: int

    @property
    def n_ops(self) -> int:
        return len(self.ops)


def apply_op(repo: Repository, record: OpLogRecord) -> None:
    """Apply one journaled primitive to a repository.

    Raises:
        WorkspaceError: an op name outside the journaled surface.
    """
    if record.op not in _REPLAYABLE_OPS:
        raise WorkspaceError(f"unknown op-log operation {record.op!r}")
    if record.op == "put_master_graph":
        (state,) = record.args
        base = repo.get_base_image(state["base_key"])
        repo.put_master_graph(master_from_state(base, state))
        return
    getattr(repo, record.op)(*record.args)


def replay_ops(repo: Repository, ops) -> int:
    """Apply journaled ops in order; returns how many were applied.

    The repository must not have a journal attached (replay would
    re-journal every op); callers attach afterwards.
    """
    n = 0
    for record in ops:
        apply_op(repo, record)
        n += 1
    return n


class OpLog:
    """Append-only write-ahead journal over one log file.

    Use :meth:`create` to start a fresh log paired with a snapshot,
    :meth:`read` to scan one without touching it, and :meth:`open` to
    continue appending (recovering from a torn tail first).  ``append``
    serialises eagerly and flushes before returning — the repository's
    journal contract.
    """

    def __init__(self, path: str | Path, file, op_count: int) -> None:
        self.path = Path(path)
        self._file = file
        self._op_count = op_count
        #: appends serialise internally; ordering across *operations*
        #: is the repository write lock's job (DESIGN.md §12)
        self._append_lock = threading.Lock()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, path: str | Path, *, snapshot_mutations: int
    ) -> "OpLog":
        """Start a fresh (truncated) log continuing a snapshot.

        The header lands atomically (temp + rename): at no instant
        does ``path`` hold a headerless file, so a crash anywhere in
        log creation leaves either the previous log or a complete new
        one — never an unopenable workspace.
        """
        path = Path(path)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as file:
            pickle.dump(
                {
                    "oplog": _OPLOG_VERSION,
                    "snapshot_mutations": snapshot_mutations,
                },
                file,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            file.flush()
        os.replace(tmp, path)
        return cls(path, open(path, "ab"), op_count=0)

    @classmethod
    def _load_header(cls, file, path) -> dict:
        try:
            header = pickle.load(file)
        except Exception as exc:
            raise WorkspaceError(
                f"op-log {path} has no readable header: {exc}"
            ) from exc
        if (
            not isinstance(header, dict)
            or header.get("oplog") != _OPLOG_VERSION
        ):
            raise WorkspaceError(
                f"op-log {path} has unsupported header {header!r}"
            )
        return header

    @classmethod
    def read_header(cls, path: str | Path) -> int:
        """Just the header's snapshot pairing token, no record scan.

        Lets a reopen decide whether the log matches the snapshot
        before paying the full replay read.

        Raises:
            WorkspaceError: unreadable or version-mismatched header.
            FileNotFoundError: missing log file.
        """
        with open(path, "rb") as file:
            return cls._load_header(file, path)["snapshot_mutations"]

    @classmethod
    def read(cls, path: str | Path) -> ReplayReport:
        """Scan a log: header + complete records + torn-tail size.

        Raises:
            WorkspaceError: unreadable or version-mismatched header.
            FileNotFoundError: missing log file.
        """
        with open(path, "rb") as file:
            header = cls._load_header(file, path)
            ops: list[OpLogRecord] = []
            good_end = file.tell()
            file_size = os.fstat(file.fileno()).st_size
            while True:
                try:
                    op, args = pickle.load(file)
                except EOFError:
                    break
                except Exception:
                    # torn tail: a crash interrupted the last append —
                    # everything before it is intact and replayable
                    break
                ops.append(OpLogRecord(op=op, args=tuple(args)))
                good_end = file.tell()
        return ReplayReport(
            snapshot_mutations=header["snapshot_mutations"],
            ops=tuple(ops),
            torn_bytes=file_size - good_end,
        )

    @classmethod
    def open(cls, path: str | Path) -> tuple["OpLog", ReplayReport]:
        """Open an existing log for append, recovering a torn tail.

        Returns the appendable log plus the scan of what it already
        held — the ops a reopen must replay on top of the snapshot.
        """
        report = cls.read(path)
        if report.torn_bytes:
            # WAL recovery: an append that never completed never
            # happened — drop the torn bytes so new records stay
            # readable
            size = os.path.getsize(path)
            with open(path, "rb+") as file:
                file.truncate(size - report.torn_bytes)
        file = open(path, "ab")
        return cls(path, file, op_count=report.n_ops), report

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    @property
    def op_count(self) -> int:
        """Ops this log holds — the replay work a reopen would pay."""
        return self._op_count

    def append(self, op: str, args: tuple) -> None:
        """Journal one primitive (the Repository journal hook).

        Pickles immediately — the args may reference live mutable
        state — and flushes before returning, so the record is handed
        to the OS before the repository applies the mutation.
        """
        with self._append_lock:
            if self._file.closed:  # pragma: no cover - guards misuse
                raise WorkspaceError(f"op-log {self.path} is closed")
            pickle.dump(
                (op, tuple(args)),
                self._file,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._file.flush()
            self._op_count += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OpLog {self.path} ops={self._op_count}>"
