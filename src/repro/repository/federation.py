"""Sharded repository federation (DESIGN.md §14).

One :class:`~repro.core.system.Expelliarmus` scales to one
``RepositoryLock``; the federation scales the paper's scheme to N
*shard* repositories behind one router while keeping the stored
outcome byte-identical to a single repository:

* **Family-affine routing.**  Algorithm 2's visibility domain is
  exactly the ``(os_type, distro)`` family — candidate bases come from
  :meth:`~repro.repository.repo.Repository.base_images_matching`, which
  never crosses families.  The router therefore consistent-hashes whole
  families onto shards (rendezvous hashing over
  :func:`~repro.ids.content_id`), the same never-split-a-family
  affinity contract :func:`~repro.service.parallel.plan_shards` gives
  thread shards.  Because every one of a family's publishes lands on
  the one shard holding that family's bases, per-shard Algorithm 2
  sees exactly the candidate set a single repository would — so base
  evolution, dedup decisions and retrieval manifests match the
  single-repository run, and the union of the shards' content-addressed
  blobs equals the single repository's blob set (the differential
  property suite pins this down).
* **Global base-image index.**  :attr:`FederatedRepository.base_index`
  maps every stored family to the shard holding its bases.  Publishes
  consult it *before* per-shard selection: a base stored on any shard
  steers the whole family's future publishes to that shard, so
  cross-shard dedup never regresses storage.  The index is rebuilt from
  the shards themselves (never trusted blindly); federation fsck flags
  drift between index and shards.
* **Rebalance.**  Moving a family between shards is a journaled,
  idempotent copy-then-delete: an intent file makes the operation
  crash-recoverable (reopen re-runs the move), and every sub-operation
  rides the shard workspaces' §11 write-ahead op-logs, so a crash at
  any point leaves each shard individually consistent and the re-run
  converges.
* **Maintenance.**  GC runs shard-local (incremental by default);
  federation fsck runs every per-shard check plus the cross-shard
  invariants (no split families, no duplicate names, no index drift,
  no tenant quota drift).

The facade mirrors the :class:`Expelliarmus` surface (publish /
retrieve / delete, the ``*_many`` batch pipelines, GC, fsck, save /
close), so the CLI and the image server front a federation unchanged.
All shard systems share one :class:`~repro.sim.clock.SimulatedClock`;
batch reports carry per-shard :class:`~repro.service.parallel.
ShardAccount` rows, so critical-path speedup vs shard count is read
off the same overlap accounting the thread-parallel pipeline uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Sequence

from repro.analysis.mining import MiningReport
from repro.core.system import Expelliarmus
from repro.errors import (
    NotInRepositoryError,
    PublishError,
    ReproError,
    WorkspaceError,
)
from repro.ids import content_id
from repro.model.vmi import VirtualMachineImage
from repro.repository.blobstore import BlobKind, BlobRecord
from repro.repository.fsck import FsckReport, Inconsistency
from repro.repository.gc import GCReport
from repro.repository.locking import RepositoryLock
from repro.repository.master_graphs import master_from_state, master_state
from repro.service.batch import BatchItemResult
from repro.service.maintenance import DeleteItemResult, MaintenanceReport
from repro.service.rebase import RebaseReport
from repro.service.parallel import (
    ParallelPublishReport,
    ParallelRetrieveReport,
    ShardAccount,
    _ProgressTracker,
    _run_sharded,
)
from repro.service.retrieval import RetrieveItemResult
from repro.service.tenancy import validate_stored_name
from repro.sim.clock import SimulatedClock

__all__ = [
    "FederatedRepository",
    "RebalanceReport",
    "family_of",
    "route_family",
]

#: persisted federation manifest (shard count + routing overrides)
MANIFEST_NAME = "federation.json"
#: rebalance intent journal — present only while a move is in flight
INTENT_NAME = "rebalance.json"

Family = tuple[str, str]


def family_of(attrs) -> Family:
    """The ``(os_type, distro)`` family of a base-attribute quadruple.

    Exactly the partition :meth:`~repro.repository.repo.Repository.
    base_images_matching` serves from its index — Algorithm 2 never
    considers a candidate outside it, which is what makes family-affine
    sharding invisible to base selection.
    """
    return (attrs.os_type, attrs.distro)


def route_family(family: Family, n_shards: int) -> int:
    """Rendezvous-hash a family onto one of ``n_shards`` shards.

    Highest-random-weight over :func:`~repro.ids.content_id`: growing
    the federation moves only the families whose winner changes, and
    the choice is deterministic across processes and runs (no
    ``PYTHONHASHSEED`` dependence).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    os_type, distro = family
    return max(
        range(n_shards),
        key=lambda s: (
            content_id(f"federation/{os_type}/{distro}/shard-{s}"),
            -s,
        ),
    )


@dataclass(frozen=True)
class RebalanceReport:
    """What one rebalance moved between shards."""

    family: Family
    #: shard the family lived on (None when nothing was stored yet)
    source: int | None
    target: int
    moved_vmis: int
    moved_bases: int
    #: bytes the target shard grew by (blob copies)
    moved_bytes: int


class _UnionBlobs:
    """Read-only union of the shards' blob stores, deduped by key.

    Blobs are content-addressed, so the same key on two shards is the
    same bytes — the union is the single-repository blob set, and its
    sizes are the *logical* (dedup-accounted) storage the experiments
    plot.
    """

    def __init__(self, fed: "FederatedRepository") -> None:
        self._fed = fed

    def records(self, kind: BlobKind | None = None) -> list[BlobRecord]:
        seen: dict[int, BlobRecord] = {}
        for system in self._fed.systems:
            for record in system.repo.blobs.records(kind):
                seen.setdefault(record.key, record)
        return list(seen.values())

    def total_bytes(self, kind: BlobKind | None = None) -> int:
        return sum(r.size for r in self.records(kind))

    def contains(self, key: int) -> bool:
        return any(
            system.repo.blobs.contains(key)
            for system in self._fed.systems
        )

    def get(self, key: int) -> BlobRecord:
        for system in self._fed.systems:
            if system.repo.blobs.contains(key):
                return system.repo.blobs.get(key)
        raise NotInRepositoryError("blob", key)


class _FederationWorkspace:
    """Durable-state view the server's checkpoint policy reads.

    Mirrors the :class:`~repro.repository.workspace.Workspace`
    attributes operator tooling consumes; counters aggregate over the
    shard workspaces.
    """

    def __init__(self, fed: "FederatedRepository") -> None:
        self._fed = fed
        self.path = fed.root

    @property
    def ops_since_checkpoint(self) -> int:
        return sum(
            system.workspace.ops_since_checkpoint
            for system in self._fed.systems
            if system.workspace is not None
        )

    @property
    def checkpoints_written(self) -> int:
        return sum(
            system.workspace.checkpoints_written
            for system in self._fed.systems
            if system.workspace is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FederationWorkspace path={self.path} "
            f"shards={self._fed.n_shards}>"
        )


def _merge_stats(deltas):
    """Sum per-shard stats deltas field-wise (SelectionStats etc.)."""
    first = deltas[0]
    return type(first)(
        **{
            f.name: sum(getattr(d, f.name) for d in deltas)
            for f in fields(first)
        }
    )


class FederatedRepository:
    """N shard repositories behind one family-affine router.

    In-memory by default; :meth:`open` (or ``Expelliarmus.open(path,
    federation=N)``) roots every shard in its own durable workspace
    under one federation directory.  The facade surface matches
    :class:`~repro.core.system.Expelliarmus`, so callers scale out by
    swapping the constructor.

    >>> from repro.workloads import standard_corpus
    >>> corpus = standard_corpus()
    >>> fed = FederatedRepository(shards=2)
    >>> _ = fed.publish(corpus.build("Mini"))
    >>> fed.retrieve("Mini").vmi.name
    'Mini'
    """

    def __init__(
        self,
        *,
        shards: int | None = None,
        root=None,
        clock: SimulatedClock | None = None,
        **system_kwargs,
    ) -> None:
        """``system_kwargs`` (``params``, ``dedup_packages``,
        ``indexed_selection``) configure every shard system
        identically; all shards share one simulated clock so charges
        land in a single accounting domain.

        Raises:
            ValueError: non-positive ``shards``.
            WorkspaceError: ``root`` holds a federation whose persisted
                shard count contradicts ``shards``.
        """
        self.clock = clock if clock is not None else SimulatedClock()
        self.root = Path(root) if root is not None else None
        self._overrides: dict[Family, int] = {}
        persisted: int | None = None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            persisted = self._read_manifest()
        if persisted is not None:
            if shards is not None and shards != persisted:
                raise WorkspaceError(
                    f"federation root {self.root} holds {persisted} "
                    f"shard(s); cannot reopen with shards={shards}"
                )
            shards = persisted
        if shards is None:
            shards = 2
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.n_shards = shards
        #: federation-level lock the service layer takes around
        #: facade operations; shard locks nest strictly underneath
        self.lock = RepositoryLock()
        self._names: dict[str, int] = {}
        self._family_home: dict[Family, int] = {}
        if self.root is None:
            self.systems = [
                Expelliarmus(clock=self.clock, **system_kwargs)
                for _ in range(shards)
            ]
        else:
            self.systems = [
                Expelliarmus.open(
                    self.shard_path(i), clock=self.clock, **system_kwargs
                )
                for i in range(shards)
            ]
            self._write_manifest()
            self._recover_rebalance()
        self.cost = self.systems[0].cost
        self._rebuild_routing()

    @classmethod
    def open(cls, path, *, shards: int | None = None, **system_kwargs):
        """Open (or initialise) a durable federation root at ``path``.

        Each shard lives in ``path/shard-NN`` as an ordinary §11
        workspace (snapshot + write-ahead op-log); the root's
        ``federation.json`` pins the shard count and routing overrides.
        A reopen recovers any in-flight rebalance before serving.

        Raises:
            WorkspaceError: persisted shard count contradicts
                ``shards``, or a shard workspace is corrupt/locked.
        """
        return cls(root=path, shards=shards, **system_kwargs)

    def shard_path(self, index: int) -> Path:
        if self.root is None:
            raise WorkspaceError("in-memory federation has no root")
        return self.root / f"shard-{index:02d}"

    # ------------------------------------------------------------------
    # routing (the global base-image index)
    # ------------------------------------------------------------------

    @property
    def base_index(self) -> dict[Family, int]:
        """The global base-image index: stored family → home shard.

        Consulted before per-shard Algorithm-2 selection — a base
        stored on *any* shard steers its whole family's publishes
        there, which is what keeps cross-shard dedup lossless.
        """
        return dict(self._family_home)

    def shard_for_family(self, family: Family) -> int:
        """Where a family's publishes go: stored home, then rebalance
        override, then rendezvous hash."""
        home = self._family_home.get(family)
        if home is not None:
            return home
        override = self._overrides.get(family)
        if override is not None and 0 <= override < self.n_shards:
            return override
        return route_family(family, self.n_shards)

    def shard_of(self, name: str) -> int:
        """The shard holding a published VMI.

        Raises:
            NotInRepositoryError: unpublished name.
        """
        shard = self._names.get(name)
        if shard is None:
            raise NotInRepositoryError("VMI", name)
        return shard

    def _rebuild_routing(self) -> None:
        """Re-derive the name and base indexes from the shards.

        The shards are the source of truth — the router never trusts
        its own maps across GC, rebalance or reopen.  On conflicting
        placements (a split family / duplicate name, which fsck flags)
        the lowest shard index wins deterministically.
        """
        self._family_home = {}
        self._names = {}
        for index, system in enumerate(self.systems):
            repo = system.repo
            for base in repo.base_images():
                self._family_home.setdefault(family_of(base.attrs), index)
            for record in repo.vmi_records():
                self._names.setdefault(record.name, index)

    # ------------------------------------------------------------------
    # manifest + rebalance journal persistence
    # ------------------------------------------------------------------

    def _read_manifest(self) -> int | None:
        path = self.root / MANIFEST_NAME
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            shards = int(data["shards"])
        except (ValueError, KeyError, TypeError) as exc:
            raise WorkspaceError(
                f"unreadable federation manifest {path}: {exc}"
            ) from exc
        self._overrides = {
            tuple(key.split("/", 1)): int(shard)
            for key, shard in data.get("overrides", {}).items()
        }
        return shards

    def _write_manifest(self) -> None:
        if self.root is None:
            return
        payload = {
            "version": 1,
            "shards": self.n_shards,
            "overrides": {
                f"{fam[0]}/{fam[1]}": shard
                for fam, shard in sorted(self._overrides.items())
            },
        }
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(path)

    def _recover_rebalance(self) -> None:
        """Finish a rebalance a crash interrupted (reopen path).

        The intent file names the move; re-running the idempotent
        copy-then-delete converges from any intermediate state the
        shard op-logs replayed to.
        """
        intent = self.root / INTENT_NAME
        if not intent.exists():
            return
        try:
            data = json.loads(intent.read_text())
            family = tuple(data["family"].split("/", 1))
            target = int(data["target"])
        except (ValueError, KeyError, TypeError) as exc:
            raise WorkspaceError(
                f"unreadable rebalance intent {intent}: {exc}"
            ) from exc
        self._move_family(family, target)
        self._overrides[family] = target
        self._write_manifest()
        intent.unlink()

    # ------------------------------------------------------------------
    # publish / retrieve / delete (the Figure 2 operations)
    # ------------------------------------------------------------------

    def publish(self, vmi: VirtualMachineImage):
        """Route one publish to its family's shard (Algorithm 1).

        The stored name is validated against the service-layer
        namespace grammar first, so a federation can never hold a name
        the daemon would misattribute to the wrong tenant.

        Raises:
            ProtocolError: separator-ambiguous or empty name.
            PublishError: name already published (on any shard).
        """
        validate_stored_name(vmi.name)
        with self.lock.write():
            return self._publish_routed(vmi)

    def _publish_routed(self, vmi: VirtualMachineImage):
        if vmi.name in self._names:
            raise PublishError(f"VMI {vmi.name!r} already published")
        family = family_of(vmi.base.attrs)
        shard = self.shard_for_family(family)
        report = self.systems[shard].publish(vmi)
        self._names[vmi.name] = shard
        self._family_home.setdefault(family, shard)
        return report

    def retrieve(self, name: str):
        """Route one retrieval to the shard holding the VMI.

        Raises:
            NotInRepositoryError: unpublished name.
        """
        with self.lock.read():
            return self.systems[self.shard_of(name)].retrieve(name)

    def delete(self, name: str) -> None:
        """Unpublish a VMI on its shard (blobs stay until that shard's
        GC).

        Raises:
            NotInRepositoryError: unpublished name.
        """
        with self.lock.write():
            shard = self.shard_of(name)
            self.systems[shard].delete(name)
            del self._names[name]

    # ------------------------------------------------------------------
    # batch pipelines (one worker per shard)
    # ------------------------------------------------------------------

    def publish_many(
        self,
        vmis: Sequence[VirtualMachineImage],
        *,
        order: str = "dedup",
        progress=None,
        on_error: str = "continue",
        parallelism: int | None = None,
    ) -> ParallelPublishReport:
        """Batch-publish across the shards, one worker thread each.

        Same contract as :meth:`Expelliarmus.publish_many`; the
        federation's parallelism *is* its shard count, so
        ``parallelism`` is accepted for signature compatibility and
        ignored.  Routing replaces :func:`plan_shards`: items go to
        their family's home shard, which keeps dedup-relevant order
        within each family exactly as the single-repository pipeline
        would (stable sort, same keys).
        """
        if order not in ("dedup", "given"):
            raise ValueError(f"unknown batch order {order!r}")
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")
        items = list(enumerate(vmis))
        tracker = _ProgressTracker(progress, len(items))
        adapter = (
            None
            if progress is None
            else (lambda done, total, item: tracker.step(item))
        )
        with self.lock.write():
            bytes_before = self.total_bytes()
            pre_failures: list[BatchItemResult] = []
            per_shard: list[list] = [[] for _ in range(self.n_shards)]
            batch_shard: dict[str, int] = {}
            vmi_family: dict[int, Family] = {}
            for pos, vmi in items:
                try:
                    validate_stored_name(vmi.name)
                    if vmi.name in self._names:
                        raise PublishError(
                            f"VMI {vmi.name!r} already published"
                        )
                    family = family_of(vmi.base.attrs)
                    shard = self.shard_for_family(family)
                    earlier = batch_shard.get(vmi.name)
                    if earlier is not None and earlier != shard:
                        # a same-shard duplicate fails inside the shard
                        # pipeline; a cross-shard one must fail here or
                        # both copies would land
                        raise PublishError(
                            f"VMI {vmi.name!r} already published"
                        )
                except ReproError as exc:
                    if on_error == "raise":
                        raise
                    failure = BatchItemResult(
                        position=pos, name=vmi.name, error=str(exc)
                    )
                    pre_failures.append(failure)
                    tracker.step(failure)
                    continue
                batch_shard.setdefault(vmi.name, shard)
                vmi_family[pos] = family
                per_shard[shard].append((pos, vmi))
                # steer the rest of this batch's family members here
                self._family_home.setdefault(family, shard)

            def run_shard(index: int, shard_items: list):
                if not shard_items:
                    return [], ShardAccount(index, 0, 0, 0.0), None
                report = self.systems[index].publish_many(
                    [vmi for _, vmi in shard_items],
                    order=order,
                    progress=adapter,
                    on_error=on_error,
                )
                positions = [pos for pos, _ in shard_items]
                results = [
                    replace(r, position=positions[r.position])
                    for r in report.results
                ]
                account = ShardAccount(
                    shard=index,
                    n_items=len(shard_items),
                    n_failed=report.n_failed,
                    simulated_seconds=report.simulated_seconds,
                )
                return results, account, report

            outcomes = _run_sharded(per_shard, run_shard, self.n_shards)
            results = sorted(
                pre_failures
                + [r for shard_results, _, _ in outcomes
                   for r in shard_results],
                key=lambda item: item.position,
            )
            for item in results:
                if item.report is not None:
                    shard = batch_shard[item.name]
                    self._names[item.name] = shard
                    self._family_home.setdefault(
                        vmi_family[item.position], shard
                    )
            deltas = [
                report.selection_stats
                for _, _, report in outcomes
                if report is not None
            ]
            stats = self.systems[0].publisher.selection_memo.stats
            return ParallelPublishReport(
                results=tuple(results),
                repo_bytes_before=bytes_before,
                repo_bytes_after=self.total_bytes(),
                selection_stats=(
                    _merge_stats(deltas) if deltas else stats.since(stats)
                ),
                shards=tuple(account for _, account, _ in outcomes),
            )

    def retrieve_many(
        self,
        requests,
        *,
        order: str = "affine",
        progress=None,
        on_error: str = "continue",
        parallelism: int | None = None,
    ) -> ParallelRetrieveReport:
        """Batch-retrieve across the shards, one worker thread each.

        Same contract as :meth:`Expelliarmus.retrieve_many`
        (``parallelism`` accepted and ignored — the shard count is the
        parallelism); names resolve through the router, request
        objects route by their recorded name.
        """
        if order not in ("affine", "given"):
            raise ValueError(f"unknown batch order {order!r}")
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")
        requests = list(requests)
        tracker = _ProgressTracker(progress, len(requests))
        adapter = (
            None
            if progress is None
            else (lambda done, total, item: tracker.step(item))
        )
        with self.lock.read():
            unresolved: list[RetrieveItemResult] = []
            per_shard: list[list] = [[] for _ in range(self.n_shards)]
            for pos, item in enumerate(requests):
                name = item if isinstance(item, str) else item.name
                shard = self._names.get(name)
                if shard is None:
                    exc = NotInRepositoryError("VMI", name)
                    if on_error == "raise":
                        raise exc
                    failure = RetrieveItemResult(
                        position=pos, name=name, error=str(exc)
                    )
                    unresolved.append(failure)
                    tracker.step(failure)
                    continue
                per_shard[shard].append((pos, item))

            def run_shard(index: int, shard_items: list):
                if not shard_items:
                    return [], ShardAccount(index, 0, 0, 0.0), None
                report = self.systems[index].retrieve_many(
                    [item for _, item in shard_items],
                    order=order,
                    progress=adapter,
                    on_error=on_error,
                )
                positions = [pos for pos, _ in shard_items]
                results = [
                    replace(r, position=positions[r.position])
                    for r in report.results
                ]
                account = ShardAccount(
                    shard=index,
                    n_items=len(shard_items),
                    n_failed=report.n_failed,
                    simulated_seconds=report.simulated_seconds,
                )
                return results, account, report

            outcomes = _run_sharded(per_shard, run_shard, self.n_shards)
            results = sorted(
                unresolved
                + [r for shard_results, _, _ in outcomes
                   for r in shard_results],
                key=lambda item: item.position,
            )
            deltas = [
                report.planner_stats
                for _, _, report in outcomes
                if report is not None
            ]
            stats = self.systems[0].planner.stats
            return ParallelRetrieveReport(
                results=tuple(results),
                planner_stats=(
                    _merge_stats(deltas) if deltas else stats.since(stats)
                ),
                shards=tuple(account for _, account, _ in outcomes),
            )

    def delete_many(
        self,
        names,
        *,
        progress=None,
        on_error: str = "continue",
        gc_threshold_bytes: int | None = None,
        checkpoint_every_ops: int | None = None,
    ) -> MaintenanceReport:
        """Batch-delete across the shards, one worker thread each.

        Same contract as :meth:`Expelliarmus.delete_many`; GC
        thresholds and checkpoint policies apply per shard (each shard
        sweeps and snapshots its own garbage).
        """
        if on_error not in ("continue", "raise"):
            raise ValueError(f"unknown error policy {on_error!r}")
        names = list(names)
        tracker = _ProgressTracker(progress, len(names))
        adapter = (
            None
            if progress is None
            else (lambda done, total, item: tracker.step(item))
        )
        with self.lock.write():
            bytes_before = self.total_bytes()
            unresolved: list[DeleteItemResult] = []
            per_shard: list[list] = [[] for _ in range(self.n_shards)]
            for pos, name in enumerate(names):
                shard = self._names.get(name)
                if shard is None:
                    exc = NotInRepositoryError("VMI", name)
                    if on_error == "raise":
                        raise exc
                    failure = DeleteItemResult(
                        position=pos, name=name, error=str(exc)
                    )
                    unresolved.append(failure)
                    tracker.step(failure)
                    continue
                per_shard[shard].append((pos, name))

            def run_shard(index: int, shard_items: list):
                if not shard_items:
                    return [], None
                report = self.systems[index].delete_many(
                    [name for _, name in shard_items],
                    progress=adapter,
                    on_error=on_error,
                    gc_threshold_bytes=gc_threshold_bytes,
                    checkpoint_every_ops=checkpoint_every_ops,
                )
                positions = [pos for pos, _ in shard_items]
                results = [
                    replace(r, position=positions[r.position])
                    for r in report.results
                ]
                return results, report

            outcomes = _run_sharded(per_shard, run_shard, self.n_shards)
            results = sorted(
                unresolved
                + [r for shard_results, _ in outcomes
                   for r in shard_results],
                key=lambda item: item.position,
            )
            for item in results:
                if item.ok:
                    self._names.pop(item.name, None)
            reports = [r for _, r in outcomes if r is not None]
            return MaintenanceReport(
                results=tuple(results),
                gc_reports=tuple(
                    gc for r in reports for gc in r.gc_reports
                ),
                repo_bytes_before=bytes_before,
                repo_bytes_after=self.total_bytes(),
                reclaimable_after=self.reclaimable_bytes(),
                simulated_seconds=sum(
                    r.simulated_seconds for r in reports
                ),
                checkpoints=sum(r.checkpoints for r in reports),
            )

    # ------------------------------------------------------------------
    # maintenance: GC, fsck, rebalance
    # ------------------------------------------------------------------

    def garbage_collect(self, *, full: bool = False) -> GCReport:
        """Run (incremental by default) GC on every shard; merged
        report."""
        with self.lock.write():
            reports = [
                system.garbage_collect(full=full)
                for system in self.systems
            ]
            self._rebuild_routing()
            return GCReport(
                removed_packages=sum(r.removed_packages for r in reports),
                removed_user_data=sum(
                    r.removed_user_data for r in reports
                ),
                removed_bases=sum(r.removed_bases for r in reports),
                reclaimed_bytes=sum(r.reclaimed_bytes for r in reports),
                mode="full" if full else "incremental",
                records_scanned=sum(r.records_scanned for r in reports),
                graph_rebuilds=sum(r.graph_rebuilds for r in reports),
                gc_seconds=sum(r.gc_seconds for r in reports),
            )

    def mine_bases(self) -> MiningReport:
        """Mine every shard's base population; merged report.

        Families never span shards (federation fsck flags a split as
        ``federation-split-family``), so shard-local mining sees every
        mergeable pool a single repository would.  Candidates come
        back globally re-ranked by estimated bytes saved.
        """
        with self.lock.read():
            reports = [system.mine_bases() for system in self.systems]
            candidates = [
                c for report in reports for c in report.candidates
            ]
            candidates.sort(key=lambda c: -c.est_saved_bytes)
            return MiningReport(
                candidates=tuple(candidates),
                groups_examined=sum(
                    r.groups_examined for r in reports
                ),
                bases_examined=sum(r.bases_examined for r in reports),
                mining_seconds=sum(r.mining_seconds for r in reports),
            )

    def rebase(self, mining: MiningReport | None = None) -> RebaseReport:
        """Run the journaled re-base on every shard; merged report.

        Each shard recovers and applies its own ``rebase.json`` intent
        (kept in the shard workspace, like its op-log), so a crash
        mid-federation-rebase leaves each shard individually
        recoverable.  A candidate from a federated ``mining`` report is
        applied by the one shard holding its donor bases — the others
        resolve it as stale and skip it.
        """
        with self.lock.write():
            reports = [
                system.rebase(mining) for system in self.systems
            ]
            self._rebuild_routing()
            return RebaseReport(
                candidates_applied=sum(
                    r.candidates_applied for r in reports
                ),
                bases_published=sum(
                    r.bases_published for r in reports
                ),
                bases_removed=sum(r.bases_removed for r in reports),
                migrated_vmis=sum(r.migrated_vmis for r in reports),
                migrated_names=tuple(
                    name
                    for report in reports
                    for name in report.migrated_names
                ),
                bytes_before=sum(r.bytes_before for r in reports),
                bytes_after=sum(r.bytes_after for r in reports),
                reclaimable_after=sum(
                    r.reclaimable_after for r in reports
                ),
                recovered=any(r.recovered for r in reports),
                rebase_seconds=sum(r.rebase_seconds for r in reports),
            )

    def fsck(self, *, registry=None) -> FsckReport:
        """Every per-shard check plus the cross-shard invariants.

        Per-shard findings come back subject-prefixed with their shard
        (``shard-00:…``); the federation adds ``federation-split-family``
        (a family's bases on more than one shard — Algorithm 2 would
        see a partial candidate set), ``federation-name-collision``
        (one name published on two shards) and
        ``federation-index-drift`` (router maps diverge from the
        shards).  With a ``registry``
        (:class:`~repro.service.tenancy.TenantRegistry`), quota drift
        the refund clamp recorded is flagged as ``quota-drift``.
        """
        with self.lock.read():
            findings: list[Inconsistency] = []
            checked_blobs = 0
            checked_vmis = 0
            for index, system in enumerate(self.systems):
                report = system.fsck()
                checked_blobs += report.checked_blobs
                checked_vmis += report.checked_vmis
                findings.extend(
                    Inconsistency(
                        f.kind, f"shard-{index:02d}:{f.subject}", f.detail
                    )
                    for f in report.findings
                )
            findings.extend(self._cross_shard_findings())
            if registry is not None:
                drift_bytes, drift_events = registry.total_drift()
                if drift_events:
                    findings.append(
                        Inconsistency(
                            "quota-drift",
                            "tenant-registry",
                            f"{drift_events} refund event(s) clamped, "
                            f"{drift_bytes} byte(s) unaccounted",
                        )
                    )
            return FsckReport(
                findings=tuple(findings),
                checked_blobs=checked_blobs,
                checked_vmis=checked_vmis,
            )

    def _cross_shard_findings(self) -> list[Inconsistency]:
        family_shards: dict[Family, set[int]] = {}
        name_shards: dict[str, set[int]] = {}
        for index, system in enumerate(self.systems):
            repo = system.repo
            for base in repo.base_images():
                family_shards.setdefault(
                    family_of(base.attrs), set()
                ).add(index)
            for record in repo.vmi_records():
                name_shards.setdefault(record.name, set()).add(index)
        findings = []
        for family, shards in sorted(family_shards.items()):
            if len(shards) > 1:
                findings.append(
                    Inconsistency(
                        "federation-split-family",
                        "/".join(family),
                        f"bases stored on shards {sorted(shards)} — "
                        "base selection sees a partial candidate set",
                    )
                )
        for name, shards in sorted(name_shards.items()):
            if len(shards) > 1:
                findings.append(
                    Inconsistency(
                        "federation-name-collision",
                        name,
                        f"published on shards {sorted(shards)}",
                    )
                )
            routed = self._names.get(name)
            if routed not in shards:
                findings.append(
                    Inconsistency(
                        "federation-index-drift",
                        name,
                        f"router maps to shard {routed}, "
                        f"stored on {sorted(shards)}",
                    )
                )
        for name, routed in sorted(self._names.items()):
            if name not in name_shards:
                findings.append(
                    Inconsistency(
                        "federation-index-drift",
                        name,
                        f"router maps to shard {routed}, "
                        "but no shard stores it",
                    )
                )
        return findings

    def rebalance(self, family, target: int) -> RebalanceReport:
        """Move one family (bases, masters, records, blobs) to
        ``target``.

        Journaled and idempotent: on a durable federation an intent
        file is written first, every sub-operation rides the shard
        op-logs, and a crash at any point is recovered on reopen by
        re-running the same copy-then-delete (already-copied objects
        are skipped, already-deleted ones are gone).  The family's
        routing override persists, so future publishes follow the
        move.

        ``family`` is ``(os_type, distro)`` or the ``"os/distro"``
        spelling.

        Raises:
            ValueError: target shard out of range.
        """
        family = self._normalise_family(family)
        if not 0 <= target < self.n_shards:
            raise ValueError(
                f"target shard {target} out of range "
                f"(federation has {self.n_shards})"
            )
        with self.lock.write():
            source = self._family_home.get(family)
            if self.root is not None:
                intent = self.root / INTENT_NAME
                tmp = intent.with_suffix(".tmp")
                tmp.write_text(
                    json.dumps(
                        {
                            "family": "/".join(family),
                            "target": target,
                        }
                    )
                )
                tmp.replace(intent)
            moved_vmis, moved_bases, moved_bytes = self._move_family(
                family, target
            )
            self._overrides[family] = target
            self._write_manifest()
            if self.root is not None:
                (self.root / INTENT_NAME).unlink(missing_ok=True)
            self._rebuild_routing()
            return RebalanceReport(
                family=family,
                source=source if source != target else source,
                target=target,
                moved_vmis=moved_vmis,
                moved_bases=moved_bases,
                moved_bytes=moved_bytes,
            )

    def _normalise_family(self, family) -> Family:
        if isinstance(family, str):
            os_type, sep, distro = family.partition("/")
            if not sep or not os_type or not distro:
                raise ValueError(
                    f"family must be 'os_type/distro', got {family!r}"
                )
            return (os_type, distro)
        os_type, distro = family
        return (str(os_type), str(distro))

    def _move_family(
        self, family: Family, target: int
    ) -> tuple[int, int, int]:
        """Idempotent copy-then-delete of one family onto ``target``.

        Copies every base, master graph, record and referenced blob to
        the target (skipping anything already there — content
        addressing makes the copy a no-op on re-run), then deletes the
        records from the source and sweeps the stranded blobs with a
        shard-local incremental GC.  Safe to re-run from any
        intermediate state, which is what makes the intent journal
        sufficient for crash recovery.
        """
        destination = self.systems[target].repo
        bytes_before = destination.total_bytes()
        moved_vmis = 0
        moved_bases = 0
        for index, system in enumerate(self.systems):
            if index == target:
                continue
            source = system.repo
            bases = [
                base
                for base in source.base_images()
                if family_of(base.attrs) == family
            ]
            if not bases:
                continue
            for base in bases:
                key = base.blob_key()
                if destination.store_base_image(base):
                    moved_bases += 1
                if source.has_master_graph(key) and (
                    not destination.has_master_graph(key)
                ):
                    state = master_state(source.get_master_graph(key))
                    destination.put_master_graph(
                        master_from_state(
                            destination.get_base_image(key), state
                        )
                    )
                for record in list(source.vmi_records_for_base(key)):
                    contribution = source.vmi_contribution(record.name)
                    for package_key in contribution:
                        destination.store_package(
                            source.get_package(package_key)
                        )
                    if record.data_label is not None:
                        destination.store_user_data(
                            source.get_user_data(record.data_label)
                        )
                    try:
                        destination.get_vmi_record(record.name)
                    except NotInRepositoryError:
                        destination.record_vmi(record, contribution)
                    source.delete_vmi_record(record.name)
                    moved_vmis += 1
            system.garbage_collect()
        return (
            moved_vmis,
            moved_bases,
            destination.total_bytes() - bytes_before,
        )

    # ------------------------------------------------------------------
    # durability (the §11 surface, aggregated)
    # ------------------------------------------------------------------

    @property
    def workspace(self):
        """Aggregated workspace view (None for an in-memory
        federation)."""
        if self.root is None:
            return None
        return _FederationWorkspace(self)

    def save(self, path=None) -> int:
        """Checkpoint every shard workspace; returns summed snapshot
        bytes.

        Raises:
            WorkspaceError: in-memory federation, or ``path`` given
                (a federation's root is fixed at open time).
        """
        if path is not None:
            raise WorkspaceError(
                "a federation cannot adopt a new root — "
                "open it with FederatedRepository.open(path)"
            )
        if self.root is None:
            raise WorkspaceError(
                "in-memory federation has no workspace to save"
            )
        return sum(system.save() for system in self.systems)

    def checkpoint_if_due(self, every_ops: int | None) -> bool:
        """Apply the op-count checkpoint policy to every shard."""
        checkpointed = [
            system.checkpoint_if_due(every_ops)
            for system in self.systems
        ]
        return any(checkpointed)

    def close(self) -> None:
        """Detach every shard from its workspace (state kept)."""
        for system in self.systems:
            system.close()

    # ------------------------------------------------------------------
    # repository view (union over shards)
    # ------------------------------------------------------------------

    @property
    def repo(self):
        """The federation doubles as the repository view the service
        layer reads (lock, records, accounting) — methods below."""
        return self

    @property
    def blobs(self) -> _UnionBlobs:
        return _UnionBlobs(self)

    def get_vmi_record(self, name: str):
        """Raises NotInRepositoryError for unpublished names."""
        return self.systems[self.shard_of(name)].repo.get_vmi_record(
            name
        )

    def vmi_records(self) -> list:
        return [
            record
            for system in self.systems
            for record in system.repo.vmi_records()
        ]

    def vmi_contribution(self, name: str) -> list[int]:
        return self.systems[self.shard_of(name)].repo.vmi_contribution(
            name
        )

    def base_images(self) -> list:
        seen: dict[int, object] = {}
        for system in self.systems:
            for base in system.repo.base_images():
                seen.setdefault(base.blob_key(), base)
        return list(seen.values())

    def total_bytes(self) -> int:
        """Logical (dedup-accounted union) bytes — the Figure 3
        metric; equals the single repository's size when the
        differential invariant holds."""
        return self.blobs.total_bytes()

    def bytes_by_kind(self) -> dict[str, int]:
        blobs = self.blobs
        return {kind.value: blobs.total_bytes(kind) for kind in BlobKind}

    def physical_bytes(self) -> int:
        """Summed shard disk usage (≥ :meth:`total_bytes` when
        cross-family packages repeat on several shards)."""
        return sum(
            system.repo.total_bytes() for system in self.systems
        )

    def shard_bytes(self) -> list[int]:
        return [system.repo.total_bytes() for system in self.systems]

    def refcounts(self) -> dict[str, dict]:
        """Per-key reference counts summed across shards — equals the
        single repository's maps under the differential invariant."""
        merged: dict[str, dict] = {"packages": {}, "data": {}, "bases": {}}
        for system in self.systems:
            for kind, counts in system.repo.refcounts().items():
                bucket = merged[kind]
                for key, count in counts.items():
                    bucket[key] = bucket.get(key, 0) + count
        return merged

    def reclaimable_bytes(self) -> int:
        return sum(
            system.repo.reclaimable_bytes() for system in self.systems
        )

    # ------------------------------------------------------------------
    # accounting facade (Expelliarmus surface)
    # ------------------------------------------------------------------

    @property
    def repository_size(self) -> int:
        return self.total_bytes()

    def repository_breakdown(self) -> dict[str, int]:
        return self.bytes_by_kind()

    def published_names(self) -> list[str]:
        return [record.name for record in self.vmi_records()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FederatedRepository shards={self.n_shards} "
            f"vmis={len(self._names)} bytes={self.total_bytes()}>"
        )
