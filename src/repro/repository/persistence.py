"""Repository snapshots: save/close/reopen the whole store.

The paper's repository survives process restarts (SQLite on an external
SSD).  The reproduction keeps payload *accounting* in memory, so this
module provides the equivalent durability: a snapshot captures every
stored object (packages, base images, user data, master graphs, VMI
records) and restores a fully functional repository — publish, retrieve
and GC all work on the reloaded instance.

Format v2 makes the round-trip *exact*, not merely functional: master
graphs carry their membership ``revision`` and the repository carries
its ``mutations`` counter, so derived-state caches persisted across
sessions (assembly plans validate on ``(mutations, base revision)``)
can never falsely validate against a reloaded repository.  Dirty-base
state rides along as in v1; the liveness refcounts and zero-reference
sets are reconstructed through the same store/record primitives that
maintain them online, which reproduces them exactly (fsck's
``refcount-drift`` check pins the equivalence down).

Snapshots use pickle over the repository's plain-data state, read and
written **only through the repository's public iteration API**
(:meth:`~repro.repository.repo.Repository.packages`,
:meth:`~repro.repository.repo.Repository.stored_user_data`,
:meth:`~repro.repository.repo.Repository.vmi_contribution`, ...), so
snapshot code cannot desynchronise from internal refactors.  Pickle is
appropriate here because snapshots are produced and consumed by the
same trusted application (never load snapshots from untrusted sources);
the SQLite metadata is regenerated on load rather than serialised, so a
snapshot cannot desynchronise the two views.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.repository.master_graphs import master_from_state, master_state
from repro.repository.repo import Repository

__all__ = [
    "save_repository",
    "load_repository",
    "restore_into",
    "repository_state",
]

_FORMAT_VERSION = 2
#: versions load_repository still understands (v1: no revisions, no
#: mutation counter — restored masters start at revision 0)
_READABLE_VERSIONS = (1, 2)


def repository_state(repo: Repository) -> dict:
    """The repository's full durable state as a plain-data dict.

    Built exclusively from the public iteration API.  The returned
    structure references live objects (package graphs are mutable) —
    serialise eagerly, as :func:`save_repository` does.
    """
    return {
        "version": _FORMAT_VERSION,
        "packages": repo.packages(),
        "bases": repo.base_images(),
        "data": repo.stored_user_data(),
        "masters": [master_state(m) for m in repo.master_graphs()],
        "records": [
            (rec, repo.vmi_contribution(rec.name))
            for rec in repo.vmi_records()
        ],
        # deletions not yet swept: the reloaded repository's next
        # incremental GC pass must still re-derive these bases
        "dirty_bases": sorted(repo.dirty_bases()),
        # derived-cache freshness token — must survive exactly
        "mutations": repo.mutations,
    }


def save_repository(repo: Repository, path: str | Path) -> int:
    """Write a snapshot; returns the snapshot size in bytes."""
    blob = pickle.dumps(
        repository_state(repo), protocol=pickle.HIGHEST_PROTOCOL
    )
    Path(path).write_bytes(blob)
    return len(blob)


def restore_into(repo: Repository, state: dict) -> Repository:
    """Apply a snapshot state dict to an (empty) repository.

    Raises:
        ValueError: unknown snapshot format version.
    """
    if state.get("version") not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported snapshot version {state.get('version')!r}"
        )
    for base in state["bases"]:
        repo.store_base_image(base)
    for pkg in state["packages"]:
        repo.store_package(pkg)
    for data in state["data"]:
        repo.store_user_data(data)
    for m in state["masters"]:
        base = repo.get_base_image(m["base_key"])
        repo.put_master_graph(master_from_state(base, m))
    for record, package_keys in state["records"]:
        repo.record_vmi(record, package_keys=package_keys)
    for base_key in state.get("dirty_bases", ()):
        repo.mark_base_dirty(base_key)
    if "mutations" in state:
        repo.restore_mutations(state["mutations"])
    return repo


def load_repository(path: str | Path) -> Repository:
    """Rebuild a repository from a snapshot.

    Raises:
        ValueError: unknown snapshot format version.
        FileNotFoundError: missing snapshot file.
    """
    state = pickle.loads(Path(path).read_bytes())
    return restore_into(Repository(), state)
