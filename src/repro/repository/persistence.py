"""Repository snapshots: save/close/reopen the whole store.

The paper's repository survives process restarts (SQLite on an external
SSD).  The reproduction keeps payload *accounting* in memory, so this
module provides the equivalent durability: a snapshot captures every
stored object (packages, base images, user data, master graphs, VMI
records) and restores a fully functional repository — publish, retrieve
and GC all work on the reloaded instance.

Snapshots use pickle over the repository's plain-data state.  That is
appropriate here because snapshots are produced and consumed by the
same trusted application (never load snapshots from untrusted sources);
the SQLite metadata is regenerated on load rather than serialised, so a
snapshot cannot desynchronise the two views.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.repository.master_graphs import MasterGraph
from repro.repository.repo import Repository

__all__ = ["save_repository", "load_repository"]

_FORMAT_VERSION = 1


def save_repository(repo: Repository, path: str | Path) -> int:
    """Write a snapshot; returns the snapshot size in bytes."""
    state = {
        "version": _FORMAT_VERSION,
        "packages": list(repo._packages.values()),
        "bases": list(repo._bases.values()),
        "data": list(repo._data.values()),
        "masters": [
            {
                "base_key": m.base_key,
                "package_graph": m.package_graph,
                "member_vmis": list(m.member_vmis),
            }
            for m in repo.master_graphs()
        ],
        "records": [
            (rec, repo.db.vmi_package_keys(rec.name))
            for rec in repo.vmi_records()
        ],
        # deletions not yet swept: the reloaded repository's next
        # incremental GC pass must still re-derive these bases
        "dirty_bases": sorted(repo.dirty_bases()),
    }
    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    Path(path).write_bytes(blob)
    return len(blob)


def load_repository(path: str | Path) -> Repository:
    """Rebuild a repository from a snapshot.

    Raises:
        ValueError: unknown snapshot format version.
        FileNotFoundError: missing snapshot file.
    """
    state = pickle.loads(Path(path).read_bytes())
    if state.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {state.get('version')!r}"
        )
    repo = Repository()
    for base in state["bases"]:
        repo.store_base_image(base)
    for pkg in state["packages"]:
        repo.store_package(pkg)
    for data in state["data"]:
        repo.store_user_data(data)
    for m in state["masters"]:
        base = repo.get_base_image(m["base_key"])
        master = MasterGraph.for_base(base)
        master.package_graph = m["package_graph"]
        master.member_vmis = list(m["member_vmis"])
        repo.put_master_graph(master)
    for record, package_keys in state["records"]:
        repo.record_vmi(record, package_keys=package_keys)
    for base_key in state.get("dirty_bases", ()):
        repo.mark_base_dirty(base_key)
    return repo
