"""Content-addressed payload store with exact byte accounting.

Everything Expelliarmus persists is a *blob*: a packaged ``.deb``, a
base image serialised as qcow2, or a user-data tarball.  Blobs are keyed
by deterministic 64-bit content ids, so storing the same package twice
is a no-op — which is precisely the deduplication the repository-size
experiments measure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DuplicateEntryError, NotInRepositoryError

__all__ = ["BlobKind", "BlobRecord", "BlobStore"]


class BlobKind(enum.Enum):
    PACKAGE = "package"
    BASE_IMAGE = "base-image"
    USER_DATA = "user-data"


@dataclass(frozen=True)
class BlobRecord:
    """One stored blob: its key, kind, size and a display label."""

    key: int
    kind: BlobKind
    size: int
    label: str


class BlobStore:
    """In-memory content-addressed store (the repository disk)."""

    def __init__(self) -> None:
        self._blobs: dict[int, BlobRecord] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def put(
        self, key: int, kind: BlobKind, size: int, label: str
    ) -> BlobRecord:
        """Store a blob.

        Raises:
            DuplicateEntryError: the key is already stored (callers must
                check :meth:`contains` first — accidental double-store
                would corrupt the byte accounting the experiments rely
                on).
            ValueError: negative size.
        """
        if size < 0:
            raise ValueError(f"blob size must be >= 0, got {size}")
        if key in self._blobs:
            raise DuplicateEntryError(
                f"blob {key:#x} ({label}) already stored"
            )
        record = BlobRecord(key=key, kind=kind, size=size, label=label)
        self._blobs[key] = record
        return record

    def remove(self, key: int) -> BlobRecord:
        """Delete a blob, reclaiming its bytes.

        Raises:
            NotInRepositoryError: unknown key.
        """
        try:
            return self._blobs.pop(key)
        except KeyError:
            raise NotInRepositoryError("blob", key) from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def contains(self, key: int) -> bool:
        return key in self._blobs

    def get(self, key: int) -> BlobRecord:
        """Fetch a blob record.

        Raises:
            NotInRepositoryError: unknown key.
        """
        try:
            return self._blobs[key]
        except KeyError:
            raise NotInRepositoryError("blob", key) from None

    def records(self, kind: BlobKind | None = None) -> list[BlobRecord]:
        if kind is None:
            return list(self._blobs.values())
        return [r for r in self._blobs.values() if r.kind is kind]

    def total_bytes(self, kind: BlobKind | None = None) -> int:
        """Bytes on the repository disk, optionally per blob kind."""
        return sum(r.size for r in self.records(kind))

    def __len__(self) -> int:
        return len(self._blobs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BlobStore blobs={len(self._blobs)} "
            f"bytes={self.total_bytes()}>"
        )
