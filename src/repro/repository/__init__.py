"""The VMI repository (right-hand side of Figure 2).

Three layers:

* :class:`~repro.repository.blobstore.BlobStore` — content-addressed
  payload storage for packaged ``.deb`` archives, base-image qcow2
  files and user-data tarballs, with exact byte accounting;
* :class:`~repro.repository.database.MetadataDatabase` — the SQLite
  metadata store the paper uses ("self-contained, serverless,
  zero-configuration", Section VI-A): VMI records, base-image records,
  package index;
* :class:`~repro.repository.repo.Repository` — the facade Algorithms
  1-3 program against: packages, base images, user data, master graphs.
"""

from repro.repository.blobstore import BlobKind, BlobStore
from repro.repository.database import MetadataDatabase
from repro.repository.repo import Repository, VMIRecord

__all__ = [
    "BlobKind",
    "BlobStore",
    "MetadataDatabase",
    "Repository",
    "VMIRecord",
]
