"""The VMI repository (right-hand side of Figure 2).

Three layers:

* :class:`~repro.repository.blobstore.BlobStore` — content-addressed
  payload storage for packaged ``.deb`` archives, base-image qcow2
  files and user-data tarballs, with exact byte accounting;
* :class:`~repro.repository.database.MetadataDatabase` — the SQLite
  metadata store the paper uses ("self-contained, serverless,
  zero-configuration", Section VI-A): VMI records, base-image records,
  package index;
* :class:`~repro.repository.repo.Repository` — the facade Algorithms
  1-3 program against: packages, base images, user data, master graphs.

Durability rides on top: :class:`~repro.repository.workspace.Workspace`
pairs a snapshot (:mod:`~repro.repository.persistence`, format v2) with
a write-ahead op-log (:mod:`~repro.repository.oplog`), so one store
survives process restarts and crashes across CLI invocations — one
live process at a time, enforced by the workspace's advisory lock.

Concurrency rides alongside: every repository carries a
:class:`~repro.repository.locking.RepositoryLock` (reentrant
reader-writer, write-preferring, timeouts), the transaction core the
parallel service executors serialize whole operations on.
"""

from repro.repository.blobstore import BlobKind, BlobStore
from repro.repository.database import MetadataDatabase
from repro.repository.locking import RepositoryLock
from repro.repository.oplog import OpLog
from repro.repository.repo import Repository, VMIRecord
from repro.repository.workspace import Workspace

__all__ = [
    "BlobKind",
    "BlobStore",
    "MetadataDatabase",
    "OpLog",
    "Repository",
    "RepositoryLock",
    "VMIRecord",
    "Workspace",
]
