"""Semantic analysis utilities over VMI corpora.

The related work the paper builds on groups similar VMIs to speed up
dedup index lookups (Crab's k-means, Xu et al.) and to schedule
co-located provisioning (Coriolis, Campello et al.).  Expelliarmus's
semantic graphs make such grouping cheap: this subpackage computes
pairwise SimG matrices over a corpus and clusters images with a
deterministic k-medoids, exposing the structure the master-graph design
exploits (images sharing a software stack cluster together).
"""

from repro.analysis.clustering import (
    ClusterResult,
    k_medoids,
    similarity_matrix,
)
from repro.analysis.mining import (
    BaseMiner,
    MiningCandidate,
    MiningReport,
    manifest_digest,
    vmi_digest,
)
from repro.analysis.storage_report import (
    PackageUsage,
    StorageReport,
    storage_report,
)

__all__ = [
    "BaseMiner",
    "ClusterResult",
    "MiningCandidate",
    "MiningReport",
    "k_medoids",
    "manifest_digest",
    "similarity_matrix",
    "vmi_digest",
    "PackageUsage",
    "StorageReport",
    "storage_report",
]
