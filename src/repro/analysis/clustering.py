"""Pairwise SimG matrices and k-medoids clustering over VMI corpora.

Distances are ``1 - SimG`` over semantic graphs.  k-medoids (PAM-style
alternating assignment/update) is used instead of k-means because SimG
is a similarity on graphs, not a vector-space embedding — only medoids
(actual images) make sense as cluster centres.  Everything is
deterministic: the first seed is the medoid of the whole matrix (the
item minimising total distance, so the result does not depend on
corpus insertion order), the rest follow by farthest-point traversal,
and ties break by index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.graph import SemanticGraph
from repro.similarity.graph import graph_similarity

__all__ = ["similarity_matrix", "ClusterResult", "k_medoids"]


def similarity_matrix(graphs: list[SemanticGraph]) -> np.ndarray:
    """Symmetric pairwise SimG matrix with unit diagonal."""
    n = len(graphs)
    m = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            s = graph_similarity(graphs[i], graphs[j])
            m[i, j] = m[j, i] = s
    return m


@dataclass(frozen=True)
class ClusterResult:
    """A clustering over ``n`` items."""

    #: medoid index of each cluster
    medoids: tuple[int, ...]
    #: cluster id (index into medoids) per item
    assignment: tuple[int, ...]

    @property
    def k(self) -> int:
        return len(self.medoids)

    def members(self, cluster: int) -> list[int]:
        """Item indices assigned to one cluster.

        Raises:
            IndexError: cluster id out of range.
        """
        if not 0 <= cluster < self.k:
            raise IndexError(f"no cluster {cluster}")
        return [
            i for i, c in enumerate(self.assignment) if c == cluster
        ]

    def cluster_of(self, item: int) -> int:
        return self.assignment[item]


def _greedy_init(distance: np.ndarray, k: int) -> list[int]:
    """k spread-out seeds: the matrix medoid, then farthest-point.

    Seeding from the global medoid (minimum total distance to all
    items) keeps the clustering invariant under corpus permutation;
    seeding from item 0 made quality depend on insertion order.
    """
    medoids = [int(np.argmin(distance.sum(axis=1)))]
    while len(medoids) < k:
        d_to_nearest = np.min(distance[:, medoids], axis=1)
        d_to_nearest[medoids] = -1.0  # never re-pick a medoid
        medoids.append(int(np.argmax(d_to_nearest)))
    return medoids


def k_medoids(
    similarity: np.ndarray, k: int, max_iter: int = 50
) -> ClusterResult:
    """Deterministic PAM over a similarity matrix.

    Raises:
        ValueError: non-square matrix, or ``k`` outside ``[1, n]``.
    """
    sim = np.asarray(similarity, dtype=np.float64)
    if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
        raise ValueError("similarity must be a square matrix")
    n = sim.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    distance = 1.0 - sim
    medoids = _greedy_init(distance, k)

    for _ in range(max_iter):
        # assign each item to its nearest medoid
        assignment = np.argmin(distance[:, medoids], axis=1)
        # update: each cluster's medoid minimises intra-cluster distance
        new_medoids = list(medoids)
        for c in range(k):
            members = np.flatnonzero(assignment == c)
            if members.size == 0:
                continue
            intra = distance[np.ix_(members, members)].sum(axis=1)
            new_medoids[c] = int(members[int(np.argmin(intra))])
        if new_medoids == medoids:
            break
        medoids = new_medoids

    assignment = np.argmin(distance[:, medoids], axis=1)
    return ClusterResult(
        medoids=tuple(medoids),
        assignment=tuple(int(a) for a in assignment),
    )
