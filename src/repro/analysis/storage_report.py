"""Storage attribution: where the repository's bytes come from.

The operator question behind Figure 3: which stored objects carry the
repository, and how widely is each shared?  Because Expelliarmus stores
*semantic parts*, attribution is exact — every blob is a base image, a
package or a user-data payload, and the VMI records say who references
what.  (Whole-image or chunk stores can only approximate this.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.repository.repo import Repository

__all__ = ["PackageUsage", "StorageReport", "storage_report"]


@dataclass(frozen=True)
class PackageUsage:
    """One stored package and its sharing across published VMIs."""

    name: str
    version: str
    deb_size: int
    #: how many published VMIs reference this exact package
    ref_count: int

    @property
    def amortized_size(self) -> float:
        """Bytes per referencing VMI (0 refs: the full size, orphan)."""
        return self.deb_size / self.ref_count if self.ref_count else (
            float(self.deb_size)
        )


@dataclass(frozen=True)
class StorageReport:
    """A full attribution of the repository's bytes."""

    total_bytes: int
    base_bytes: int
    package_bytes: int
    data_bytes: int
    n_vmis: int
    packages: tuple[PackageUsage, ...]

    def top_packages(self, n: int = 10) -> list[PackageUsage]:
        """The ``n`` largest stored packages."""
        return sorted(
            self.packages, key=lambda p: p.deb_size, reverse=True
        )[:n]

    def most_shared(self, n: int = 10) -> list[PackageUsage]:
        """The ``n`` most widely referenced packages."""
        return sorted(
            self.packages,
            key=lambda p: (p.ref_count, p.deb_size),
            reverse=True,
        )[:n]

    def orphans(self) -> list[PackageUsage]:
        """Stored packages no published VMI references (GC candidates)."""
        return [p for p in self.packages if p.ref_count == 0]

    @property
    def sharing_factor(self) -> float:
        """Mean references per stored package (1.0 = no sharing)."""
        if not self.packages:
            return 0.0
        return sum(p.ref_count for p in self.packages) / len(
            self.packages
        )


def storage_report(repo: Repository) -> StorageReport:
    """Attribute every stored byte and count cross-VMI sharing."""
    kinds = repo.bytes_by_kind()

    # reference counts from the VMI->package join table
    refs: dict[int, int] = {}
    records = repo.vmi_records()
    for record in records:
        for key in repo.db.vmi_package_keys(record.name):
            refs[key] = refs.get(key, 0) + 1

    packages = tuple(
        PackageUsage(
            name=row.name,
            version=row.version,
            deb_size=row.deb_size,
            ref_count=refs.get(row.blob_key, 0),
        )
        for row in repo.db.all_packages()
    )
    return StorageReport(
        total_bytes=repo.total_bytes(),
        base_bytes=kinds["base-image"],
        package_bytes=kinds["package"],
        data_bytes=kinds["user-data"],
        n_vmis=len(records),
        packages=packages,
    )
