"""Mining stored master graphs for mergeable base-image families.

The paper treats base images as *inputs*: Algorithm 2 picks the best
stored base for an upload but never asks whether the stored population
itself is any good.  At sprawl scale it rarely is — CI pipelines and
marketplace imports mint near-identical bases that differ only in a
few packages every VMI on them imports anyway.  Each such sibling
duplicates a skeleton and an essential-package payload that one shared
base could serve.

This module finds those merge opportunities.  The miner walks the
stored bases family by family (same attribute quadruple, same
skeleton), pre-groups large families with the SimG k-medoids machinery
from :mod:`repro.analysis.clustering` over their master graphs, and
then greedily accretes bases into a candidate union, admitting a base
only while the *byte-identity condition* holds for every member VMI:

    every package the union would bake into a member's base that the
    member's old base lacked must already be in that member's primary
    dependency closure — same name **and** same content identity.

Under that condition re-basing a member merely moves packages between
"base-baked" and "imported on retrieval": the retrieved filesystem is
unchanged to the byte (the assembler imports exactly the closure
packages whose names the base lacks — see
:meth:`~repro.core.assembler.ImageAssembler`).  Identity matters, not
just name: two stored versions of one library must not be conflated,
so name collisions with different content reject the base outright.

The result is a :class:`MiningReport` of scored
:class:`MiningCandidate` proposals — consumed by
:class:`~repro.service.rebase.RebaseService`, which publishes the
winning bases and migrates the member VMIs under an intent journal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.clustering import k_medoids, similarity_matrix
from repro.image.manifest import FileManifest
from repro.model.attributes import BaseImageAttrs
from repro.model.package import Package
from repro.model.vmi import BaseImage, VirtualMachineImage
from repro.repository.repo import Repository, base_image_qcow2
from repro.sim.clock import SimulatedClock
from repro.sim.costmodel import CostModel

__all__ = [
    "BaseMiner",
    "MiningCandidate",
    "MiningReport",
    "manifest_digest",
    "vmi_digest",
]

#: pre-group families larger than this with k-medoids over SimG
_CLUSTER_THRESHOLD = 3


def manifest_digest(manifest: FileManifest) -> tuple[bytes, bytes]:
    """Order-insensitive content digest of a file manifest.

    :class:`FileManifest` equality is order-sensitive (concatenation
    order is an artifact of assembly, not of content); re-basing moves
    packages between base-baked and imported, which reorders the very
    manifests it must leave byte-identical.  Compare the file
    *multiset* instead.
    """
    order = np.lexsort((manifest.sizes, manifest.content_ids))
    return (
        manifest.content_ids[order].tobytes(),
        manifest.sizes[order].tobytes(),
    )


def vmi_digest(vmi: VirtualMachineImage) -> tuple:
    """What "retrieves byte-identically" means for a whole VMI."""
    return (
        vmi.mounted_size,
        manifest_digest(vmi.full_manifest()),
    )


@dataclass(frozen=True)
class MiningCandidate:
    """One proposed merge: donors collapse onto a (possibly new) base.

    When ``reuses_winner`` the union equals the largest sibling's
    package set, so no new blob is stored — the donors' VMIs simply
    repoint at the winner.  Otherwise the union is *synthetic*: a new
    base is published (skeleton taken from the winner) and the winner
    itself becomes a donor.
    """

    attrs: BaseImageAttrs
    #: largest accepted sibling: merge target, or skeleton source
    winner_key: int
    #: content identity of the merged base (= ``winner_key`` when
    #: reusing; the synthetic union's blob key otherwise) — recovery
    #: resolves the base by this, never by name matching
    merged_key: int
    #: sorted package names of the merged base
    package_names: tuple[str, ...]
    #: bases removed after migration (includes the winner iff synthetic)
    donor_keys: tuple[int, ...]
    #: VMI records the merge migrates
    n_vmis: int
    #: donor qcow bytes freed, net of any new synthetic blob stored
    est_saved_bytes: int
    reuses_winner: bool


@dataclass(frozen=True)
class MiningReport:
    """Everything one mining pass found."""

    candidates: tuple[MiningCandidate, ...]
    #: (attrs, skeleton) families with at least two live bases
    groups_examined: int
    #: live bases the pass considered
    bases_examined: int
    #: simulated seconds the pass charged
    mining_seconds: float

    @property
    def est_saved_bytes(self) -> int:
        return sum(c.est_saved_bytes for c in self.candidates)

    def render(self) -> str:
        lines = [
            f"mined {self.bases_examined} base(s) in "
            f"{self.groups_examined} family group(s): "
            f"{len(self.candidates)} merge candidate(s), "
            f"est. {self.est_saved_bytes / 1e9:.3f} GB reclaimable "
            f"({self.mining_seconds:.2f} simulated s)"
        ]
        for c in self.candidates:
            kind = "reuse" if c.reuses_winner else "synthetic"
            lines.append(
                f"  {c.attrs}: {len(c.donor_keys)} donor(s) -> "
                f"{kind} base of {len(c.package_names)} package(s), "
                f"{c.n_vmis} VMI(s), est. "
                f"{c.est_saved_bytes / 1e9:.3f} GB"
            )
        return "\n".join(lines)


class BaseMiner:
    """Propose base merges that provably preserve retrieved bytes."""

    def __init__(
        self,
        repo: Repository,
        clock: SimulatedClock | None = None,
        cost: CostModel | None = None,
    ) -> None:
        self.repo = repo
        self.clock = clock or SimulatedClock()
        self.cost = cost or CostModel()

    def mine(self) -> MiningReport:
        """One full pass over the stored base population."""
        with self.clock.measure() as breakdown:
            candidates, groups, examined = self._mine()
        return MiningReport(
            candidates=tuple(candidates),
            groups_examined=groups,
            bases_examined=examined,
            mining_seconds=breakdown.total,
        )

    def _charge(self, seconds: float) -> None:
        self.clock.advance(seconds, "mine")

    # -- family grouping --------------------------------------------------

    def _live_bases(self) -> list[BaseImage]:
        """Bases with member VMIs and a master graph.

        Zero-reference bases are the garbage collector's business, and
        a base without a master cannot prove anything about its
        members' closures — both are skipped, never merged.
        """
        return [
            base
            for base in self.repo.base_images()
            if self.repo.base_refs(base.blob_key()) > 0
            and self.repo.has_master_graph(base.blob_key())
        ]

    def _family_groups(
        self, bases: list[BaseImage]
    ) -> list[list[BaseImage]]:
        """Mergeable pools: same attribute quadruple, same skeleton."""
        groups: dict[tuple, list[BaseImage]] = {}
        for base in bases:
            key = (base.attrs.key(), manifest_digest(base.skeleton))
            groups.setdefault(key, []).append(base)
        return [g for g in groups.values() if len(g) >= 2]

    def _clusters(
        self, group: list[BaseImage]
    ) -> list[list[BaseImage]]:
        """Split a large family by master-graph similarity.

        Greedy accretion is quadratic in pool size; for big families
        the SimG pre-grouping keeps each pool to bases whose software
        stacks actually overlap, the same way Algorithm 2's candidate
        index keeps base selection sublinear.
        """
        if len(group) <= _CLUSTER_THRESHOLD:
            return [group]
        graphs = [
            self.repo.get_master_graph(b.blob_key()).full_graph()
            for b in group
        ]
        n = len(graphs)
        self._charge(
            self.cost.similarity_computation() * (n * (n - 1) // 2)
        )
        result = k_medoids(similarity_matrix(graphs), max(1, n // 3))
        clusters = [
            [group[i] for i in result.members(c)]
            for c in range(result.k)
        ]
        return [c for c in clusters if len(c) >= 2]

    # -- the byte-identity condition --------------------------------------

    def _member_coverage(self, base: BaseImage) -> dict[str, int] | None:
        """name -> content key every member's closure agrees on.

        A package may be baked into this base's replacement iff every
        member VMI's primary closure contains it with exactly one
        content identity — the map returned here.  ``None`` when a
        member's closure cannot be derived (stale master), which makes
        the base unmergeable.
        """
        key = base.blob_key()
        master = self.repo.get_master_graph(key)
        records = self.repo.vmi_records_for_base(key)
        covered: dict[str, int] | None = None
        for record in records:
            self._charge(self.cost.gc_record_scan())
            by_name: dict[str, set[int]] = {}
            for pname in record.primary_names:
                if not master.has_package(pname):
                    return None
                subgraph = master.extract_primary_subgraph(
                    pname, record.primary_version(pname)
                )
                for pkg in subgraph.packages():
                    by_name.setdefault(pkg.name, set()).add(
                        pkg.blob_key()
                    )
            unique = {
                name: keys.pop()
                for name, keys in by_name.items()
                if len(keys) == 1
            }
            if covered is None:
                covered = unique
            else:
                covered = {
                    name: k
                    for name, k in covered.items()
                    if unique.get(name) == k
                }
        return covered if records else None

    @staticmethod
    def _union_safe(
        union: dict[str, Package],
        accepted: list[tuple[BaseImage, dict[str, int]]],
    ) -> bool:
        """Does the union keep every accepted base's members identical?"""
        for base, covered in accepted:
            names = base.package_names()
            for pkg in union.values():
                if pkg.name in names:
                    continue
                if covered.get(pkg.name) != pkg.blob_key():
                    return False
        return True

    # -- greedy accretion -------------------------------------------------

    def _mine_cluster(
        self, cluster: list[BaseImage]
    ) -> MiningCandidate | None:
        ranked = sorted(
            cluster,
            key=lambda b: (-len(b.packages), b.blob_key()),
        )
        coverage: dict[int, dict[str, int]] = {}
        for base in ranked:
            cov = self._member_coverage(base)
            if cov is not None:
                coverage[base.blob_key()] = cov
        ranked = [b for b in ranked if b.blob_key() in coverage]
        if len(ranked) < 2:
            return None

        winner = ranked[0]
        union: dict[str, Package] = {
            p.name: p for p in winner.packages
        }
        accepted = [(winner, coverage[winner.blob_key()])]
        for base in ranked[1:]:
            tentative = dict(union)
            conflict = False
            for pkg in base.packages:
                held = tentative.get(pkg.name)
                if held is not None and held.blob_key() != pkg.blob_key():
                    conflict = True  # two identities, one name: never
                    break
                tentative[pkg.name] = pkg
            if conflict:
                continue
            trial = accepted + [(base, coverage[base.blob_key()])]
            if self._union_safe(tentative, trial):
                union = tentative
                accepted = trial
        if len(accepted) < 2:
            return None
        return self._score(winner, union, accepted)

    def _score(
        self,
        winner: BaseImage,
        union: dict[str, Package],
        accepted: list[tuple[BaseImage, dict[str, int]]],
    ) -> MiningCandidate | None:
        union_keys = {p.blob_key() for p in union.values()}
        winner_keys = {p.blob_key() for p in winner.packages}
        reuses_winner = union_keys == winner_keys
        donors = [
            base
            for base, _ in accepted
            if not (reuses_winner and base is winner)
        ]
        saved = sum(
            self.repo.base_image_size(b.blob_key()) for b in donors
        )
        merged_key = winner.blob_key()
        if not reuses_winner:
            synthetic = BaseImage(
                attrs=winner.attrs,
                packages=tuple(
                    sorted(union.values(), key=lambda p: p.name)
                ),
                skeleton=winner.skeleton,
            )
            merged_key = synthetic.blob_key()
            saved -= base_image_qcow2(synthetic).size
        if saved <= 0:
            return None
        n_vmis = sum(
            self.repo.base_refs(b.blob_key()) for b in donors
        )
        return MiningCandidate(
            attrs=winner.attrs,
            winner_key=winner.blob_key(),
            merged_key=merged_key,
            package_names=tuple(sorted(union)),
            donor_keys=tuple(b.blob_key() for b in donors),
            n_vmis=n_vmis,
            est_saved_bytes=saved,
            reuses_winner=reuses_winner,
        )

    def _mine(
        self,
    ) -> tuple[list[MiningCandidate], int, int]:
        bases = self._live_bases()
        groups = self._family_groups(bases)
        candidates = []
        for group in groups:
            for cluster in self._clusters(group):
                candidate = self._mine_cluster(cluster)
                if candidate is not None:
                    candidates.append(candidate)
        candidates.sort(key=lambda c: -c.est_saved_bytes)
        return candidates, len(groups), len(bases)
