"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in environments whose setuptools is too old to build
PEP-660 editable wheels without the ``wheel`` package (as in the offline
evaluation container: ``pip install -e . --no-build-isolation`` or
``python setup.py develop`` both work).
"""

from setuptools import setup

setup()
