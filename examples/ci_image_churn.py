#!/usr/bin/env python
"""CI churn scenario: 40 nightly rebuilds of one development image.

Figure 3c's workload: a CI pipeline republishes its IDE image after
every build.  Packages never change; logs, caches and home directories
do.  Whole-image stores pay for the churn on every build; Expelliarmus
discards it at decomposition and stores only the drifting user data.

Run:  python examples/ci_image_churn.py
"""

from repro.baselines import (
    ExpelliarmusScheme,
    GzipStore,
    HemeraStore,
    MirageStore,
    Qcow2Store,
)
from repro.units import MB, fmt_gb
from repro.workloads.generator import standard_corpus
from repro.workloads.ide_builds import ide_build_recipes

N_BUILDS = 40


def main() -> None:
    corpus = standard_corpus()
    recipes = ide_build_recipes(N_BUILDS)
    schemes = [
        Qcow2Store(),
        GzipStore(),
        MirageStore(),
        HemeraStore(),
        ExpelliarmusScheme(),
    ]

    print(f"publishing {N_BUILDS} successive IDE builds...\n")
    checkpoints = (1, 10, 20, 40)
    history: dict[str, list[int]] = {s.name: [] for s in schemes}
    for i, recipe in enumerate(recipes, start=1):
        for scheme in schemes:
            scheme.publish(corpus.builder.build(recipe))
            if i in checkpoints:
                history[scheme.name].append(scheme.repository_bytes)

    header = f"{'encoding':<14}" + "".join(
        f"{f'@{c}':>10}" for c in checkpoints
    ) + f"{'per build':>12}"
    print(header)
    for scheme in schemes:
        row = history[scheme.name]
        growth = (row[-1] - row[0]) / (N_BUILDS - 1) / MB
        cells = "".join(f"{fmt_gb(v):>10}" for v in row)
        print(f"{scheme.name:<14}{cells}{growth:>10.1f}MB")

    exp = history["Expelliarmus"][-1]
    mirage = history["Mirage"][-1]
    gzip_ = history["Qcow2 + Gzip"][-1]
    print(f"\nExpelliarmus ends {mirage / exp:.1f}x below Mirage/Hemera "
          f"and {gzip_ / exp:.1f}x below Qcow2+Gzip")
    print("(paper: 2.2x and 16x)")


if __name__ == "__main__":
    main()
