#!/usr/bin/env python
"""Sprawl control: delete images, garbage-collect, containerize.

VMI sprawl is the problem statement of the paper's introduction: images
accumulate, most of them stale.  Because Expelliarmus stores *semantic
parts* with cross-image sharing, deleting an image is an index
operation and a mark-and-sweep pass reclaims exactly the content no
surviving image references.  And since a published VMI is already
decomposed, converting survivors into per-service containers (the
paper's stated future work) is a relabelling of stored content.

Run:  python examples/sprawl_control.py
"""

from repro import Expelliarmus, standard_corpus
from repro.containerize import ContainerRegistry
from repro.units import fmt_gb


def main() -> None:
    corpus = standard_corpus()
    system = Expelliarmus()

    kept = ("Mini", "Tomcat", "Elastic Stack")
    stale = ("Redis", "PostgreSql", "Jenkins", "MongoDb")
    for name in kept + stale:
        system.publish(corpus.build(name))
    print(f"published {len(kept) + len(stale)} images; repository "
          f"{fmt_gb(system.repository_size)}")

    # -- retire the stale images ---------------------------------------
    for name in stale:
        system.delete(name)
    print(f"deleted {len(stale)} stale images "
          f"(index only; still {fmt_gb(system.repository_size)})")

    report = system.garbage_collect()
    print(f"garbage collection: -{report.removed_packages} packages, "
          f"-{report.removed_user_data} data payloads, "
          f"reclaimed {fmt_gb(report.reclaimed_bytes)}")
    print(f"repository now {fmt_gb(system.repository_size)}")

    # openjdk survived: Tomcat still needs it even though Jenkins left
    assert system.repo.packages_named("openjdk-8-jre-headless")
    survivors = ", ".join(system.published_names())
    print(f"surviving images: {survivors}")

    # -- containerize the survivors -------------------------------------
    print("\ncontainerizing survivors (one container per service):")
    containerizer = system.containerizer()
    registry = ContainerRegistry()
    for name in ("Tomcat", "Elastic Stack"):
        for image in containerizer.containerize_services(name):
            push = registry.push(image)
            print(f"  pushed {image.name:<32} "
                  f"new layers: {push.new_layers}, "
                  f"mounted (shared): {push.mounted_layers}")
    print(f"registry holds {registry.stored_layers} layers, "
          f"{fmt_gb(registry.total_bytes)} — every container shares "
          f"the one base layer")


if __name__ == "__main__":
    main()
