#!/usr/bin/env python
"""Semantic clustering: group a marketplace by software stack.

The related work the paper builds on clusters VMIs to speed up dedup
lookups (Crab) and co-placement (Coriolis).  With semantic graphs the
grouping needs no content scanning at all: pairwise SimG over the
primary-package subgraphs exposes the stacks directly.

Run:  python examples/semantic_clustering.py
"""


from repro.analysis import k_medoids, similarity_matrix
from repro.workloads.generator import standard_corpus

NAMES = (
    "Tomcat", "Jenkins", "Apache Solr", "Elastic Stack",  # java
    "PostgreSql", "Lapp",  # postgres
    "Redis", "MongoDb",  # standalone stores
    "Django",  # python
)


def main() -> None:
    corpus = standard_corpus()
    print(f"building semantic graphs for {len(NAMES)} images...")
    graphs = [
        corpus.build(name).semantic_graph().extract_primary_subgraph()
        for name in NAMES
    ]

    sim = similarity_matrix(graphs)
    width = max(len(n) for n in NAMES)
    print("\npairwise SimG over primary-package subgraphs:")
    print(" " * (width + 1) + "  ".join(f"{n[:6]:>6}" for n in NAMES))
    for i, name in enumerate(NAMES):
        row = "  ".join(f"{sim[i, j]:6.2f}" for j in range(len(NAMES)))
        print(f"{name:<{width}} {row}")

    k = 4
    result = k_medoids(sim, k=k)
    print(f"\nk-medoids, k={k}:")
    for c in range(result.k):
        members = [NAMES[i] for i in result.members(c)]
        medoid = NAMES[result.medoids[c]]
        print(f"  cluster around {medoid!r}: {', '.join(members)}")

    # the java images share their openjdk substack
    java = {NAMES.index(n) for n in
            ("Tomcat", "Jenkins", "Apache Solr", "Elastic Stack")}
    clusters = {result.cluster_of(i) for i in java}
    print(f"\njava-stack images land in {len(clusters)} cluster(s)")


if __name__ == "__main__":
    main()
