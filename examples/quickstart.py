#!/usr/bin/env python
"""Quickstart: publish two images, inspect the repository, retrieve one.

Run:  python examples/quickstart.py
"""

from repro import Expelliarmus, standard_corpus
from repro.units import fmt_gb, fmt_seconds


def main() -> None:
    corpus = standard_corpus()
    system = Expelliarmus()

    # -- publish the minimal image: first upload stores the base ------
    mini = corpus.build("Mini")
    print(f"uploading Mini ({fmt_gb(mini.mounted_size)}, "
          f"{mini.n_files} files)")
    report = system.publish(mini)
    print(f"  published in {fmt_seconds(report.publish_time)}; "
          f"stored new base: {report.stored_new_base}")

    # -- publish Redis: nearly everything dedups against the base -----
    redis = corpus.build("Redis")
    report = system.publish(redis)
    print(f"uploading Redis: similarity {report.similarity:.2f}, "
          f"exported {list(report.exported_packages)}, "
          f"took {fmt_seconds(report.publish_time)}")

    # -- what does the repository actually hold? ----------------------
    print(f"repository: {fmt_gb(system.repository_size)} total")
    for kind, size in system.repository_breakdown().items():
        print(f"  {kind:<12} {fmt_gb(size)}")
    print(f"  (the two uploads together mounted "
          f"{fmt_gb(mini.mounted_size + redis.mounted_size)})")

    # -- retrieve Redis back -------------------------------------------
    result = system.retrieve("Redis")
    vmi = result.vmi
    print(f"retrieved Redis in {fmt_seconds(result.retrieval_time)}:")
    for label in ("base-copy", "handle", "reset", "import"):
        print(f"  {label:<10} {fmt_seconds(result.component(label))}")
    assert vmi.has_package("redis-server")
    print(f"  redis-server installed at version "
          f"{vmi.installed('redis-server').package.version}")


if __name__ == "__main__":
    main()
