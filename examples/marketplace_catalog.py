#!/usr/bin/env python
"""Marketplace scenario: ingest 19 AWS-style appliance images.

The workload the paper's introduction motivates: a cloud provider's
image marketplace accumulates near-duplicate appliance images (LAMP,
LEMP, databases, CI servers ...).  This example ingests the full
Table II corpus into Expelliarmus and into every baseline encoding,
prints the storage economics, then assembles a custom image from
packages that arrived in *different* uploads.

Run:  python examples/marketplace_catalog.py
"""

from repro import standard_corpus
from repro.baselines import (
    ExpelliarmusScheme,
    GzipStore,
    HemeraStore,
    MirageStore,
    Qcow2Store,
)
from repro.units import fmt_gb, fmt_seconds
from repro.workloads.vmi_specs import TABLE_II_ORDER


def main() -> None:
    corpus = standard_corpus()
    schemes = [
        Qcow2Store(),
        GzipStore(),
        MirageStore(),
        HemeraStore(),
        ExpelliarmusScheme(),
    ]

    print(f"ingesting {len(TABLE_II_ORDER)} marketplace images "
          f"into {len(schemes)} repository encodings...\n")
    total_uploaded = 0
    for name in TABLE_II_ORDER:
        total_uploaded += corpus.build(name).mounted_size
        for scheme in schemes:
            scheme.publish(corpus.build(name))

    print(f"{'encoding':<14} {'repo size':>10} {'vs uploads':>11}")
    for scheme in schemes:
        ratio = total_uploaded / scheme.repository_bytes
        print(f"{scheme.name:<14} {fmt_gb(scheme.repository_bytes):>10} "
              f"{ratio:>10.1f}x")
    print(f"(uploads mounted {fmt_gb(total_uploaded)} in total)\n")

    # -- the semantic repository can compose new products ---------------
    expelliarmus = schemes[-1].system
    base_key = expelliarmus.repo.base_images()[0].blob_key()
    print("assembling a custom 'analytics' image that was never "
          "uploaded as such:")
    result = expelliarmus.assemble_custom(
        "analytics",
        base_key,
        ("postgresql-9.5", "redis-server", "elasticsearch"),
    )
    names = ", ".join(result.imported_packages)
    print(f"  imported: {names}")
    print(f"  assembled in {fmt_seconds(result.retrieval_time)}; "
          f"repository unchanged at "
          f"{fmt_gb(expelliarmus.repository_size)}")


if __name__ == "__main__":
    main()
