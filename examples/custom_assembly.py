#!/usr/bin/env python
"""Semantic assembly: compose images on the fly, handle incompatibility.

Section IV-D: "Expelliarmus enables VMI assembly either with identical
or with differing functionality, provided that the requested software
package exists in the repository."  This example publishes a handful of
appliance images, then plays image chef: composing stacks that were
never uploaded, inspecting the semantic graphs behind them, and showing
what happens when a request cannot be satisfied.

Run:  python examples/custom_assembly.py
"""

from repro import Expelliarmus, standard_corpus
from repro.errors import RetrievalError
from repro.similarity import graph_similarity
from repro.units import fmt_seconds


def main() -> None:
    corpus = standard_corpus()
    system = Expelliarmus()

    for name in ("Mini", "Redis", "PostgreSql", "Tomcat", "Django"):
        report = system.publish(corpus.build(name))
        print(f"published {name:<11} "
              f"(+{len(report.exported_packages)} packages, "
              f"similarity {report.similarity:.2f})")

    master = system.repo.master_graphs()[0]
    available = sorted(p.name for p in master.primary_packages())
    print(f"\nprimary packages on offer: {', '.join(available)}")

    base_key = master.base_key

    # -- a web stack that was never uploaded as one image --------------
    combo = system.assemble_custom(
        "web-stack", base_key,
        ("tomcat8", "postgresql-9.5", "redis-server"),
    )
    print(f"\nassembled 'web-stack' in "
          f"{fmt_seconds(combo.retrieval_time)} from "
          f"{len(combo.imported_packages)} imported packages")

    # -- the semantic graphs of two compositions can be compared --------
    g_combo = combo.vmi.semantic_graph()
    g_tomcat = system.retrieve("Tomcat").vmi.semantic_graph()
    sim = graph_similarity(g_combo, g_tomcat)
    print(f"SimG(web-stack, Tomcat) = {sim:.2f}")

    # -- an unsatisfiable request fails loudly, not silently -------------
    try:
        system.assemble_custom("nope", base_key, ("mongodb-org-server",))
    except RetrievalError as exc:
        print(f"\nrequest for unstocked package rejected: {exc}")

    # -- graph introspection ---------------------------------------------
    g = g_combo
    primaries = [p.name for p in g.primary_packages()]
    print(f"\n'web-stack' semantic graph: {sum(1 for _ in g.packages())} "
          f"package vertices, {g.n_edges()} dependency edges")
    print(f"  primaries: {', '.join(sorted(primaries))}")
    print(f"  dependency cycle present (libc6/dpkg/perl-base): "
          f"{g.has_cycle()}")


if __name__ == "__main__":
    main()
